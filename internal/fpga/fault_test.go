package fpga

import (
	"testing"

	"ppnpart/internal/ppn"
)

func pipelineNet(t *testing.T, stages int, iters int64) *ppn.PPN {
	t.Helper()
	net, err := ppn.Pipeline(stages, iters)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestFaultPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan FaultPlan
	}{
		{"missingFPGA", FaultPlan{FPGAFailures: []FPGAFailure{{FPGA: 4, Cycle: 0}}}},
		{"negativeFailCycle", FaultPlan{FPGAFailures: []FPGAFailure{{FPGA: 0, Cycle: -1}}}},
		{"selfLink", FaultPlan{Degradations: []LinkDegradation{{A: 1, B: 1, Factor: 0.5}}}},
		{"factorAboveOne", FaultPlan{Degradations: []LinkDegradation{{A: 0, B: 1, Factor: 1.5}}}},
		{"negativeFactor", FaultPlan{Degradations: []LinkDegradation{{A: 0, B: 1, Factor: -0.1}}}},
		{"outageBadWindow", FaultPlan{Outages: []LinkOutage{{A: 0, B: 1, Start: 10, End: 5}}}},
		{"outageBadLink", FaultPlan{Outages: []LinkOutage{{A: 0, B: 9, Start: 0, End: 5}}}},
	}
	for _, c := range cases {
		if err := c.plan.Validate(4); err == nil {
			t.Errorf("%s: invalid plan accepted", c.name)
		}
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(4); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if !nilPlan.Empty() {
		t.Error("nil plan should be empty")
	}
	ok := FaultPlan{
		FPGAFailures: []FPGAFailure{{FPGA: 1, Cycle: 100}},
		Degradations: []LinkDegradation{{A: 0, B: 2, Factor: 0.5, FromCycle: 3}},
		Outages:      []LinkOutage{{A: 2, B: 3, Start: 5, End: 9}},
	}
	if err := ok.Validate(4); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	if ok.Empty() {
		t.Error("populated plan should not be empty")
	}
	if got := ok.FailedFPGAs(); len(got) != 1 || got[0] != 1 {
		t.Errorf("FailedFPGAs = %v, want [1]", got)
	}
}

func TestDegradedTopology(t *testing.T) {
	topo := Uniform(4, 500, 4)
	plan := &FaultPlan{
		FPGAFailures: []FPGAFailure{{FPGA: 3, Cycle: 50}},
		Degradations: []LinkDegradation{{A: 0, B: 1, Factor: 0.5, FromCycle: 10}},
		Outages:      []LinkOutage{{A: 1, B: 2, Start: 0, End: 100}},
	}
	deg, err := plan.DegradedTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if err := deg.Validate(); err != nil {
		t.Fatalf("degraded topology invalid: %v", err)
	}
	if deg.LinkBW[0][1] != 2 || deg.LinkBW[1][0] != 2 {
		t.Errorf("degraded link (0,1) = %d/%d, want 2/2", deg.LinkBW[0][1], deg.LinkBW[1][0])
	}
	for j := 0; j < 3; j++ {
		if deg.LinkBW[3][j] != 0 || deg.LinkBW[j][3] != 0 {
			t.Errorf("links of failed FPGA 3 not zeroed: [3][%d]=%d", j, deg.LinkBW[3][j])
		}
	}
	// Transient outage does not persist.
	if deg.LinkBW[1][2] != 4 {
		t.Errorf("outage persisted into degraded topology: %d", deg.LinkBW[1][2])
	}
	// Original untouched.
	if topo.LinkBW[0][1] != 4 || topo.LinkBW[3][0] != 4 {
		t.Error("DegradedTopology mutated its input")
	}
}

func TestSimulateFaultsEmptyPlanMatchesBaseline(t *testing.T) {
	net := pipelineNet(t, 4, 300)
	topo := Uniform(2, 5000, 2)
	parts := []int{0, 0, 1, 1}
	base, err := SimulateTopology(net, parts, topo, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	withPlan, err := SimulateTopologyFaults(net, parts, topo, &FaultPlan{}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if base.Makespan != withPlan.Makespan || base.TotalFirings != withPlan.TotalFirings {
		t.Fatalf("empty plan diverges: makespan %d vs %d", base.Makespan, withPlan.Makespan)
	}
}

func TestFPGAFailureStallsDownstream(t *testing.T) {
	net := pipelineNet(t, 4, 300)
	topo := Uniform(2, 5000, 2)
	parts := []int{0, 0, 1, 1}
	plan := &FaultPlan{FPGAFailures: []FPGAFailure{{FPGA: 0, Cycle: 10}}}
	res, err := SimulateTopologyFaults(net, parts, topo, plan, SimOptions{StallWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("run completed although the source FPGA died")
	}
	if !res.Deadlocked {
		t.Fatal("starved run should be declared deadlocked")
	}
	if len(res.StalledChannels) == 0 {
		t.Fatal("no stalled channels reported")
	}
	if len(res.DeadProcesses) == 0 {
		t.Fatal("no dead processes reported")
	}
	for _, p := range res.DeadProcesses {
		if parts[p] != 0 {
			t.Errorf("process %d reported dead but sits on surviving FPGA %d", p, parts[p])
		}
	}
	healthy, err := SimulateTopology(net, parts, topo, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalFirings >= healthy.TotalFirings {
		t.Errorf("faulted run fired %d >= healthy %d", res.TotalFirings, healthy.TotalFirings)
	}
}

// burstNet is a two-process network emitting several tokens per firing,
// so that reduced link bandwidth actually throttles it.
func burstNet(t *testing.T, iters, tokensPerFiring int64) *ppn.PPN {
	t.Helper()
	net := &ppn.PPN{Name: "burst"}
	a := net.AddProcess(ppn.Process{Name: "a", Iterations: iters, OpsPerIteration: 1})
	b := net.AddProcess(ppn.Process{Name: "b", Iterations: iters, OpsPerIteration: 1})
	net.AddChannel(ppn.Channel{From: a, To: b, Tokens: iters * tokensPerFiring})
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestLinkDegradationSlowsButCompletes(t *testing.T) {
	net := burstNet(t, 400, 4)
	topo := Uniform(2, 5000, 4)
	parts := []int{0, 1}
	healthy, err := SimulateTopology(net, parts, topo, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Degradations: []LinkDegradation{{A: 0, B: 1, Factor: 0.25, FromCycle: 0}}}
	slow, err := SimulateTopologyFaults(net, parts, topo, plan, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !slow.Completed {
		t.Fatal("degraded run should still complete")
	}
	if slow.Makespan <= healthy.Makespan {
		t.Errorf("degraded makespan %d <= healthy %d", slow.Makespan, healthy.Makespan)
	}
	if slow.Throughput >= healthy.Throughput {
		t.Errorf("degraded throughput %.3f >= healthy %.3f", slow.Throughput, healthy.Throughput)
	}
}

func TestLinkOutageDelaysButRecovers(t *testing.T) {
	net := burstNet(t, 200, 2)
	topo := Uniform(2, 5000, 2)
	parts := []int{0, 1}
	healthy, err := SimulateTopology(net, parts, topo, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	plan := &FaultPlan{Outages: []LinkOutage{{A: 0, B: 1, Start: 0, End: 80}}}
	res, err := SimulateTopologyFaults(net, parts, topo, plan, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run should complete once the outage ends")
	}
	if res.Makespan <= healthy.Makespan {
		t.Errorf("outage makespan %d <= healthy %d", res.Makespan, healthy.Makespan)
	}
}

func TestFailureFromCycleZero(t *testing.T) {
	net := pipelineNet(t, 4, 100)
	topo := Uniform(4, 5000, 2)
	parts := []int{0, 1, 2, 3}
	plan := &FaultPlan{FPGAFailures: []FPGAFailure{{FPGA: 0, Cycle: 0}}}
	res, err := SimulateTopologyFaults(net, parts, topo, plan, SimOptions{StallWindow: 32})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed || res.TotalFirings != 0 {
		t.Fatalf("dead-from-start source still made progress: %d firings", res.TotalFirings)
	}
}
