package fpga

import (
	"fmt"
	"math/rand"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// Placement search: a partition fixes WHICH processes share an FPGA; on a
// heterogeneous Topology it still matters WHICH physical device each
// partition lands on (fast ring links vs slow backplane, big vs small
// parts on big vs small devices). BestPlacement searches the part→FPGA
// assignments exhaustively — K! permutations, fine for the K ≤ 8 systems
// the paper targets — and returns the placement minimizing (violations,
// worst link overload, cut-weighted link slowdown).

// PlacementResult describes the chosen placement.
type PlacementResult struct {
	// PartToFPGA[p] is the physical device hosting logical part p.
	PartToFPGA []int
	// Assignment is the node-level mapping under that placement.
	Assignment []int
	// Check is the static verdict of the chosen placement.
	Check *TopologyCheck
	// Evaluated counts the permutations examined.
	Evaluated int
}

// BestPlacement searches all part→FPGA permutations of parts (a K-way
// partition of g) on the topology and returns the best, judged by:
// fewest missing-link pairs, then fewest bandwidth violations, then the
// smallest total bandwidth excess, then the smallest worst-pair
// slack usage. rounds converts token totals to link budgets as in
// Topology.CheckMapping. K above 8 is rejected (40320 permutations is
// the practical ceiling; larger systems need a heuristic placer).
func BestPlacement(g *graph.Graph, parts []int, k int, t *Topology, rounds int64) (*PlacementResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 || k > 8 {
		return nil, fmt.Errorf("fpga: exhaustive placement supports 1..8 parts, got %d", k)
	}
	if t.NumFPGAs() != k {
		return nil, fmt.Errorf("fpga: topology has %d FPGAs, partition has %d parts", t.NumFPGAs(), k)
	}
	if err := metrics.Validate(g, parts, k); err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}
	// Precompute part-level structure once: pairwise traffic + resources.
	traffic := metrics.BandwidthMatrix(g, parts, k)
	res := metrics.PartResources(g, parts, k)

	type score struct {
		missing  int
		bwViol   int
		excess   int64
		worstUse float64
		resViol  int
	}
	better := func(a, b score) bool {
		if a.missing != b.missing {
			return a.missing < b.missing
		}
		if a.resViol != b.resViol {
			return a.resViol < b.resViol
		}
		if a.bwViol != b.bwViol {
			return a.bwViol < b.bwViol
		}
		if a.excess != b.excess {
			return a.excess < b.excess
		}
		return a.worstUse < b.worstUse
	}
	evaluate := func(perm []int) score {
		var s score
		for p := 0; p < k; p++ {
			if res[p] > t.Resources[perm[p]] {
				s.resViol++
			}
			for q := p + 1; q < k; q++ {
				tr := traffic[p][q]
				if tr == 0 {
					continue
				}
				bwPQ := t.LinkBW[perm[p]][perm[q]]
				if bwPQ == 0 {
					s.missing++
					continue
				}
				budget := bwPQ * rounds
				if tr > budget {
					s.bwViol++
					s.excess += tr - budget
				}
				if use := float64(tr) / float64(budget); use > s.worstUse {
					s.worstUse = use
				}
			}
		}
		return s
	}

	perm := make([]int, k)
	for i := range perm {
		perm[i] = i
	}
	bestPerm := append([]int(nil), perm...)
	bestScore := evaluate(perm)
	evaluated := 1
	// Heap's algorithm over the remaining permutations.
	c := make([]int, k)
	i := 0
	for i < k {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			evaluated++
			if s := evaluate(perm); better(s, bestScore) {
				bestScore = s
				copy(bestPerm, perm)
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}

	assignment := make([]int, len(parts))
	for u, p := range parts {
		assignment[u] = bestPerm[p]
	}
	chk, err := t.CheckMapping(g, assignment, rounds)
	if err != nil {
		return nil, err
	}
	return &PlacementResult{
		PartToFPGA: bestPerm,
		Assignment: assignment,
		Check:      chk,
		Evaluated:  evaluated,
	}, nil
}

// AnnealPlacement searches the part→FPGA assignment by swap-based local
// search with restarts — the heuristic placer for systems beyond
// BestPlacement's K ≤ 8 exhaustive ceiling. Deterministic for a fixed
// seed. iterations <= 0 defaults to 200·K²; restarts <= 0 defaults to 4.
func AnnealPlacement(g *graph.Graph, parts []int, k int, t *Topology, rounds int64,
	iterations, restarts int, seed int64) (*PlacementResult, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if k <= 0 {
		return nil, fmt.Errorf("fpga: k = %d must be positive", k)
	}
	if t.NumFPGAs() != k {
		return nil, fmt.Errorf("fpga: topology has %d FPGAs, partition has %d parts", t.NumFPGAs(), k)
	}
	if err := metrics.Validate(g, parts, k); err != nil {
		return nil, err
	}
	if rounds < 1 {
		rounds = 1
	}
	if iterations <= 0 {
		iterations = 200 * k * k
	}
	if restarts <= 0 {
		restarts = 4
	}
	traffic := metrics.BandwidthMatrix(g, parts, k)
	res := metrics.PartResources(g, parts, k)

	// cost: lexicographic (missing links, resource violations, bandwidth
	// excess, worst-use) folded into a single comparable tuple.
	type cost struct {
		missing, resViol int
		excess           int64
		worstUse         float64
	}
	better := func(a, b cost) bool {
		if a.missing != b.missing {
			return a.missing < b.missing
		}
		if a.resViol != b.resViol {
			return a.resViol < b.resViol
		}
		if a.excess != b.excess {
			return a.excess < b.excess
		}
		return a.worstUse < b.worstUse
	}
	evaluate := func(perm []int) cost {
		var c cost
		for p := 0; p < k; p++ {
			if res[p] > t.Resources[perm[p]] {
				c.resViol++
			}
			for q := p + 1; q < k; q++ {
				tr := traffic[p][q]
				if tr == 0 {
					continue
				}
				bwPQ := t.LinkBW[perm[p]][perm[q]]
				if bwPQ == 0 {
					c.missing++
					continue
				}
				budget := bwPQ * rounds
				if tr > budget {
					c.excess += tr - budget
				}
				if use := float64(tr) / float64(budget); use > c.worstUse {
					c.worstUse = use
				}
			}
		}
		return c
	}

	rng := rand.New(rand.NewSource(seed))
	var globalBest []int
	var globalCost cost
	evaluated := 0
	for r := 0; r < restarts; r++ {
		perm := rng.Perm(k)
		cur := evaluate(perm)
		evaluated++
		for it := 0; it < iterations; it++ {
			i, j := rng.Intn(k), rng.Intn(k)
			if i == j {
				continue
			}
			perm[i], perm[j] = perm[j], perm[i]
			cand := evaluate(perm)
			evaluated++
			if better(cand, cur) || cand == cur {
				cur = cand
			} else {
				perm[i], perm[j] = perm[j], perm[i] // revert
			}
		}
		if globalBest == nil || better(cur, globalCost) {
			globalBest = append([]int(nil), perm...)
			globalCost = cur
		}
	}

	assignment := make([]int, len(parts))
	for u, p := range parts {
		assignment[u] = globalBest[p]
	}
	chk, err := t.CheckMapping(g, assignment, rounds)
	if err != nil {
		return nil, err
	}
	return &PlacementResult{
		PartToFPGA: globalBest,
		Assignment: assignment,
		Check:      chk,
		Evaluated:  evaluated,
	}, nil
}
