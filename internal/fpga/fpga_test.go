package fpga

import (
	"testing"

	"ppnpart/internal/metrics"
	"ppnpart/internal/ppn"
)

func platform4() Platform {
	return Platform{NumFPGAs: 4, Rmax: 500, LinkBandwidth: 100}
}

func TestPlatformValidate(t *testing.T) {
	if err := platform4().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Platform{
		{NumFPGAs: 0, Rmax: 1, LinkBandwidth: 1},
		{NumFPGAs: 1, Rmax: 0, LinkBandwidth: 1},
		{NumFPGAs: 1, Rmax: 1, LinkBandwidth: 0},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Fatalf("bad platform %d accepted", i)
		}
	}
	c := platform4().Constraints()
	if c.Bmax != 100 || c.Rmax != 500 {
		t.Fatalf("constraints = %+v", c)
	}
}

func TestMappingCheck(t *testing.T) {
	net, err := ppn.Pipeline(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToGraph(ppn.DefaultResourceModel())
	if err != nil {
		t.Fatal(err)
	}
	// Two stages per FPGA on a 2-FPGA platform.
	p := Platform{NumFPGAs: 2, Rmax: 1000, LinkBandwidth: 200}
	m := FromParts([]int{0, 0, 1, 1}, p)
	res, err := m.Check(g)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("loose mapping infeasible: %v", res.Violations)
	}
	if res.LinkTraffic[0][1] != 100 {
		t.Fatalf("link traffic = %d, want 100 (the single crossing channel)", res.LinkTraffic[0][1])
	}
	// Tight link: 100 tokens > 50 bandwidth.
	p.LinkBandwidth = 50
	res, err = FromParts([]int{0, 0, 1, 1}, p).Check(g)
	if err != nil {
		t.Fatal(err)
	}
	if res.Feasible {
		t.Fatal("bandwidth violation not detected")
	}
	found := false
	for _, v := range res.Violations {
		if v.Kind == "bandwidth" {
			found = true
		}
	}
	if !found {
		t.Fatal("missing bandwidth violation")
	}
}

func TestMappingCheckErrors(t *testing.T) {
	net, _ := ppn.Pipeline(3, 10)
	g, _ := net.ToGraph(ppn.DefaultResourceModel())
	p := Platform{NumFPGAs: 2, Rmax: 1000, LinkBandwidth: 100}
	if _, err := FromParts([]int{0, 1}, p).Check(g); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := FromParts([]int{0, 1, 5}, p).Check(g); err == nil {
		t.Fatal("out-of-range FPGA accepted")
	}
	if _, err := (Mapping{Assignment: []int{0, 0, 0}}).Check(g); err == nil {
		t.Fatal("invalid platform accepted")
	}
}

func TestSimulatePipelineSingleFPGA(t *testing.T) {
	net, err := ppn.Pipeline(3, 50)
	if err != nil {
		t.Fatal(err)
	}
	p := Platform{NumFPGAs: 1, Rmax: 10_000, LinkBandwidth: 1000}
	m := FromParts([]int{0, 0, 0}, p)
	res, err := Simulate(net, m, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed || res.Deadlocked {
		t.Fatalf("single-FPGA pipeline did not complete: %+v", res)
	}
	// 3 stages x 50 iterations, pipelined: makespan ~ 52, firings = 150.
	if res.TotalFirings != 150 {
		t.Fatalf("firings = %d, want 150", res.TotalFirings)
	}
	if res.Makespan > 60 {
		t.Fatalf("makespan = %d, want pipelined (~52)", res.Makespan)
	}
	if len(res.Links) != 0 {
		t.Fatal("single FPGA should have no links")
	}
}

func TestSimulateThrottledLinkSlowsDown(t *testing.T) {
	// Producer emits 10 tokens per firing (500 tokens over 50 firings):
	// a 2-token/cycle link must throttle it, a 20-token/cycle link not.
	net := &ppn.PPN{Name: "burst"}
	a := net.AddProcess(ppn.Process{Name: "a", Iterations: 50, OpsPerIteration: 1})
	b := net.AddProcess(ppn.Process{Name: "b", Iterations: 50, OpsPerIteration: 1})
	net.AddChannel(ppn.Channel{From: a, To: b, Tokens: 500})
	if err := net.Validate(); err != nil {
		t.Fatal(err)
	}
	fast := Platform{NumFPGAs: 2, Rmax: 10_000, LinkBandwidth: 20}
	slow := Platform{NumFPGAs: 2, Rmax: 10_000, LinkBandwidth: 2}
	rFast, err := Simulate(net, FromParts([]int{0, 1}, fast), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rSlow, err := Simulate(net, FromParts([]int{0, 1}, slow), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rFast.Completed || !rSlow.Completed {
		t.Fatalf("runs did not complete: fast %+v slow %+v", rFast, rSlow)
	}
	if rSlow.Makespan <= rFast.Makespan {
		t.Fatalf("throttled link should slow down: slow %d <= fast %d", rSlow.Makespan, rFast.Makespan)
	}
	if rSlow.Throughput >= rFast.Throughput {
		t.Fatal("throttled link should cut throughput")
	}
	if rSlow.SaturatedLinks == 0 {
		t.Fatal("throttled link should report saturation")
	}
	if rSlow.MaxLinkUtilization < 0.9 {
		t.Fatalf("throttled link utilization = %f, want ~1", rSlow.MaxLinkUtilization)
	}
}

func TestSimulateLinkStatsAccounting(t *testing.T) {
	net, _ := ppn.Pipeline(2, 60)
	p := Platform{NumFPGAs: 2, Rmax: 10_000, LinkBandwidth: 10}
	res, err := Simulate(net, FromParts([]int{0, 1}, p), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 1 {
		t.Fatalf("links = %d, want 1", len(res.Links))
	}
	l := res.Links[0]
	if l.TokensMoved != 60 {
		t.Fatalf("tokens moved = %d, want 60", l.TokensMoved)
	}
	if l.A != 0 || l.B != 1 {
		t.Fatalf("link endpoints %d-%d", l.A, l.B)
	}
	if l.Utilization(10, res.Makespan) <= 0 {
		t.Fatal("utilization should be positive")
	}
	if l.Utilization(0, 0) != 0 {
		t.Fatal("degenerate utilization should be 0")
	}
}

func TestSimulateSplitMergeAllMappings(t *testing.T) {
	net, err := ppn.SplitMerge(4, 400)
	if err != nil {
		t.Fatal(err)
	}
	// All on one FPGA vs spread across four.
	p := Platform{NumFPGAs: 4, Rmax: 100_000, LinkBandwidth: 50}
	all := make([]int, len(net.Processes))
	res1, err := Simulate(net, FromParts(all, p), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res1.Completed {
		t.Fatal("co-located run did not complete")
	}
	spread := make([]int, len(net.Processes))
	for i := range spread {
		spread[i] = i % 4
	}
	res2, err := Simulate(net, FromParts(spread, p), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res2.Completed {
		t.Fatal("spread run did not complete")
	}
	if res2.Makespan < res1.Makespan {
		t.Fatal("crossing links cannot be faster than co-location")
	}
}

func TestSimulateErrors(t *testing.T) {
	net, _ := ppn.Pipeline(2, 10)
	p := Platform{NumFPGAs: 2, Rmax: 100, LinkBandwidth: 10}
	if _, err := Simulate(net, FromParts([]int{0}, p), SimOptions{}); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := Simulate(net, FromParts([]int{0, 7}, p), SimOptions{}); err == nil {
		t.Fatal("bad FPGA accepted")
	}
	bad := Platform{NumFPGAs: 0, Rmax: 1, LinkBandwidth: 1}
	if _, err := Simulate(net, FromParts([]int{0, 0}, bad), SimOptions{}); err == nil {
		t.Fatal("bad platform accepted")
	}
	// Unfinalized process (no iterations).
	raw := &ppn.PPN{}
	raw.AddProcess(ppn.Process{Name: "a", Iterations: 0})
	raw.AddProcess(ppn.Process{Name: "b", Iterations: 1})
	if _, err := Simulate(raw, FromParts([]int{0, 0}, p), SimOptions{}); err == nil {
		t.Fatal("unfinalized network accepted")
	}
}

func TestSimulateMaxCyclesAborts(t *testing.T) {
	net, _ := ppn.Pipeline(2, 1000)
	p := Platform{NumFPGAs: 2, Rmax: 10_000, LinkBandwidth: 1}
	res, err := Simulate(net, FromParts([]int{0, 1}, p), SimOptions{MaxCycles: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Completed {
		t.Fatal("10 cycles cannot complete 1000 iterations over a 1-token link")
	}
	if res.Makespan != 10 {
		t.Fatalf("makespan = %d, want 10 (abort)", res.Makespan)
	}
}

func TestSimulateFeasibleVsViolatingMapping(t *testing.T) {
	// The headline validation: on the same network and platform, a
	// mapping that satisfies the static Bmax check sustains full
	// throughput; one that violates it saturates and slows down.
	net, err := ppn.SplitMerge(2, 1000)
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToGraph(ppn.DefaultResourceModel())
	if err != nil {
		t.Fatal(err)
	}
	// Network: split(0), merge(1), work0(2), work1(3); each worker moves
	// 500 tokens in and 500 out. Three FPGAs so pairwise traffic differs.
	p := Platform{NumFPGAs: 3, Rmax: 10_000, LinkBandwidth: 2}
	// Spread mapping: every link pair carries at most 500 tokens.
	good := FromParts([]int{0, 2, 0, 1}, p)
	// Funnel mapping: both links carry 1000 tokens (split feeds both
	// workers over one pair, both workers feed merge over another).
	bad := FromParts([]int{0, 2, 1, 1}, p)

	gRes, err := Simulate(net, good, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bRes, err := Simulate(net, bad, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !gRes.Completed || !bRes.Completed {
		t.Fatalf("runs did not complete: %+v / %+v", gRes, bRes)
	}
	// The static check agrees with the dynamic outcome directionally:
	// both mappings move 1000 tokens, but the good one splits them across
	// two link directions while the bad one pushes all bursts through one
	// pair, so the bad mapping cannot be faster.
	if bRes.Makespan < gRes.Makespan {
		t.Fatalf("violating mapping faster than feasible one: %d < %d", bRes.Makespan, gRes.Makespan)
	}
	// Static pairwise traffic of the bad mapping must exceed the good
	// one's — the simulator and the metrics see the same structure.
	goodBW := metrics.MaxLocalBandwidth(g, good.Assignment, 3)
	badBW := metrics.MaxLocalBandwidth(g, bad.Assignment, 3)
	if badBW <= goodBW {
		t.Fatalf("expected bad mapping to have higher static traffic: %d vs %d", badBW, goodBW)
	}
}

func TestChannelPeakOccupancyBuffersSizing(t *testing.T) {
	// Pipeline at matched rates: each FIFO should need only a couple of
	// tokens of depth.
	net, _ := ppn.Pipeline(3, 200)
	p := Platform{NumFPGAs: 1, Rmax: 100000, LinkBandwidth: 1000}
	res, err := Simulate(net, FromParts([]int{0, 0, 0}, p), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ChannelPeakOccupancy) != 2 {
		t.Fatalf("peaks = %v", res.ChannelPeakOccupancy)
	}
	for ci, peak := range res.ChannelPeakOccupancy {
		if peak < 1 || peak > 4 {
			t.Fatalf("channel %d peak occupancy %d, want small (matched rates)", ci, peak)
		}
	}
	// A throttled crossing channel must accumulate a deep backlog.
	burst := &ppn.PPN{Name: "burst"}
	a := burst.AddProcess(ppn.Process{Name: "a", Iterations: 20, OpsPerIteration: 1})
	bb := burst.AddProcess(ppn.Process{Name: "b", Iterations: 20, OpsPerIteration: 1})
	burst.AddChannel(ppn.Channel{From: a, To: bb, Tokens: 200}) // 10 tokens/firing
	slow := Platform{NumFPGAs: 2, Rmax: 100000, LinkBandwidth: 1}
	res2, err := Simulate(burst, FromParts([]int{0, 1}, slow), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.ChannelPeakOccupancy[0] < 50 {
		t.Fatalf("throttled channel peak %d, want deep backlog", res2.ChannelPeakOccupancy[0])
	}
}
