package fpga

import (
	"encoding/json"
	"fmt"
	"io"
)

// JSON serialization of topologies, so deployment tools can describe the
// physical system in a file:
//
//	{
//	  "resources": [500, 500, 300, 300],
//	  "linkBW": [[0,2,1,2],[2,0,2,1],[1,2,0,2],[2,1,2,0]]
//	}

type jsonTopology struct {
	Resources []int64   `json:"resources"`
	LinkBW    [][]int64 `json:"linkBW"`
}

// WriteTopologyJSON serializes the topology.
func WriteTopologyJSON(w io.Writer, t *Topology) error {
	if err := t.Validate(); err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jsonTopology{Resources: t.Resources, LinkBW: t.LinkBW})
}

// ReadTopologyJSON parses and validates a topology description.
func ReadTopologyJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topology json: %v", err)
	}
	t := &Topology{Resources: jt.Resources, LinkBW: jt.LinkBW}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("topology json: %v", err)
	}
	return t, nil
}
