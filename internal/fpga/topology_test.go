package fpga

import (
	"bytes"
	"strings"
	"testing"

	"ppnpart/internal/ppn"
)

func TestTopologyValidate(t *testing.T) {
	if err := Uniform(4, 100, 10).Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []*Topology{
		{},
		{Resources: []int64{100}, LinkBW: [][]int64{{0}, {0}}},
		{Resources: []int64{0}, LinkBW: [][]int64{{0}}},
		{Resources: []int64{100, 100}, LinkBW: [][]int64{{0, 5}, {5}}},
		{Resources: []int64{100, 100}, LinkBW: [][]int64{{1, 5}, {5, 0}}},   // nonzero diagonal
		{Resources: []int64{100, 100}, LinkBW: [][]int64{{0, 5}, {6, 0}}},   // asymmetric
		{Resources: []int64{100, 100}, LinkBW: [][]int64{{0, -5}, {-5, 0}}}, // negative
	}
	for i, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Fatalf("bad topology %d accepted", i)
		}
	}
}

func TestUniformAndRingConstruction(t *testing.T) {
	u := Uniform(3, 100, 7)
	if u.NumFPGAs() != 3 || u.LinkBW[0][1] != 7 || u.LinkBW[0][0] != 0 {
		t.Fatalf("uniform topology wrong: %+v", u)
	}
	r := RingTopology(4, 100, 20, 3)
	if r.LinkBW[0][1] != 20 || r.LinkBW[1][2] != 20 || r.LinkBW[3][0] != 20 {
		t.Fatal("ring neighbor links wrong")
	}
	if r.LinkBW[0][2] != 3 || r.LinkBW[1][3] != 3 {
		t.Fatal("backplane links wrong")
	}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// No backplane: diagonal pairs have no link.
	iso := RingTopology(4, 100, 20, 0)
	if iso.LinkBW[0][2] != 0 {
		t.Fatal("disabled backplane should be 0")
	}
}

func TestCheckMappingHeterogeneous(t *testing.T) {
	net, err := ppn.Pipeline(4, 100)
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToGraph(ppn.DefaultResourceModel())
	if err != nil {
		t.Fatal(err)
	}
	// Ring of 4 with fast neighbor links; map stages around the ring:
	// stage i on FPGA i. Traffic flows only between ring neighbors.
	topo := RingTopology(4, 1000, 2, 1)
	parts := []int{0, 1, 2, 3}
	chk, err := topo.CheckMapping(g, parts, 100) // 100 rounds
	if err != nil {
		t.Fatal(err)
	}
	// Each crossing channel carries 100 tokens over 100 rounds = rate 1
	// <= neighbor budget 2*100.
	if !chk.Feasible {
		t.Fatalf("ring mapping should fit: %+v", chk)
	}
	// Map stage 0 and 2 together: traffic 0<->1, 1<->2 uses... now place
	// stages so a channel lands on the weak diagonal: 0,2 adjacent
	// stages? Use parts {0,2,0,2}: channels s0->s1 (0->2 diagonal),
	// s1->s2 (2->0), s2->s3 (0->2). Diagonal budget = 1*100 = 100; each
	// channel carries 100; pair (0,2) carries 300 > 100.
	parts2 := []int{0, 2, 0, 2}
	chk2, err := topo.CheckMapping(g, parts2, 100)
	if err != nil {
		t.Fatal(err)
	}
	if chk2.Feasible || len(chk2.BandwidthViolations) == 0 {
		t.Fatalf("diagonal overload not detected: %+v", chk2)
	}
}

func TestCheckMappingMissingLink(t *testing.T) {
	net, _ := ppn.Pipeline(2, 10)
	g, _ := net.ToGraph(ppn.DefaultResourceModel())
	topo := RingTopology(4, 1000, 5, 0) // no backplane
	// Stages on FPGAs 0 and 2: no direct link.
	chk, err := topo.CheckMapping(g, []int{0, 2}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Feasible || len(chk.MissingLinks) != 1 {
		t.Fatalf("missing link not detected: %+v", chk)
	}
}

func TestCheckMappingResourceViolation(t *testing.T) {
	net, _ := ppn.Pipeline(3, 10)
	g, _ := net.ToGraph(ppn.DefaultResourceModel())
	topo := Uniform(2, 10, 1000) // tiny FPGAs
	chk, err := topo.CheckMapping(g, []int{0, 0, 1}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if chk.Feasible || len(chk.ResourceViolations) == 0 {
		t.Fatal("resource violation not detected")
	}
}

func TestCheckMappingErrors(t *testing.T) {
	net, _ := ppn.Pipeline(2, 10)
	g, _ := net.ToGraph(ppn.DefaultResourceModel())
	topo := Uniform(2, 100, 10)
	if _, err := topo.CheckMapping(g, []int{0}, 1); err == nil {
		t.Fatal("short mapping accepted")
	}
	if _, err := topo.CheckMapping(g, []int{0, 9}, 1); err == nil {
		t.Fatal("bad FPGA accepted")
	}
	var badTopo Topology
	if _, err := badTopo.CheckMapping(g, []int{0, 0}, 1); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestSimulateTopologyMatchesUniformPlatform(t *testing.T) {
	// A uniform topology must behave identically to the Platform path.
	net, err := ppn.FIR(4, 500)
	if err != nil {
		t.Fatal(err)
	}
	parts := make([]int, len(net.Processes))
	for i := range parts {
		parts[i] = i % 3
	}
	p := Platform{NumFPGAs: 3, Rmax: 10_000, LinkBandwidth: 2}
	rPlat, err := Simulate(net, FromParts(parts, p), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rTopo, err := SimulateTopology(net, parts, Uniform(3, 10_000, 2), SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rPlat.Makespan != rTopo.Makespan || rPlat.TotalFirings != rTopo.TotalFirings {
		t.Fatalf("uniform topology diverges from platform: %d/%d vs %d/%d",
			rPlat.Makespan, rPlat.TotalFirings, rTopo.Makespan, rTopo.TotalFirings)
	}
}

func TestSimulateTopologySlowLinkThrottles(t *testing.T) {
	// Burst producer across a ring: neighbor placement uses the fast
	// link, diagonal placement the slow backplane.
	net := &ppn.PPN{Name: "burst"}
	a := net.AddProcess(ppn.Process{Name: "a", Iterations: 50, OpsPerIteration: 1})
	b := net.AddProcess(ppn.Process{Name: "b", Iterations: 50, OpsPerIteration: 1})
	net.AddChannel(ppn.Channel{From: a, To: b, Tokens: 500})
	topo := RingTopology(4, 10_000, 10, 1)

	fast, err := SimulateTopology(net, []int{0, 1}, topo, SimOptions{}) // neighbors
	if err != nil {
		t.Fatal(err)
	}
	slow, err := SimulateTopology(net, []int{0, 2}, topo, SimOptions{}) // diagonal
	if err != nil {
		t.Fatal(err)
	}
	if !fast.Completed || !slow.Completed {
		t.Fatal("runs did not complete")
	}
	if slow.Makespan <= fast.Makespan {
		t.Fatalf("slow backplane should throttle: %d <= %d", slow.Makespan, fast.Makespan)
	}
}

func TestSimulateTopologyRejectsMissingLink(t *testing.T) {
	net, _ := ppn.Pipeline(2, 10)
	topo := RingTopology(4, 10_000, 5, 0)
	if _, err := SimulateTopology(net, []int{0, 2}, topo, SimOptions{}); err == nil {
		t.Fatal("traffic on missing link accepted")
	}
	if _, err := SimulateTopology(net, []int{0}, topo, SimOptions{}); err == nil {
		t.Fatal("short mapping accepted")
	}
	var bad Topology
	if _, err := SimulateTopology(net, []int{0, 0}, &bad, SimOptions{}); err == nil {
		t.Fatal("invalid topology accepted")
	}
}

func TestTopologyJSONRoundTrip(t *testing.T) {
	topo := RingTopology(4, 750, 3, 1)
	var buf bytes.Buffer
	if err := WriteTopologyJSON(&buf, topo); err != nil {
		t.Fatal(err)
	}
	back, err := ReadTopologyJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumFPGAs() != 4 {
		t.Fatal("round trip lost devices")
	}
	for i := range topo.LinkBW {
		for j := range topo.LinkBW[i] {
			if topo.LinkBW[i][j] != back.LinkBW[i][j] {
				t.Fatal("round trip lost link bandwidth")
			}
		}
	}
	// Errors.
	if _, err := ReadTopologyJSON(strings.NewReader("{oops")); err == nil {
		t.Fatal("bad JSON accepted")
	}
	if _, err := ReadTopologyJSON(strings.NewReader(`{"resources":[1],"linkBW":[[0,1]]}`)); err == nil {
		t.Fatal("invalid topology accepted")
	}
	var bad Topology
	if err := WriteTopologyJSON(&buf, &bad); err == nil {
		t.Fatal("invalid topology serialized")
	}
}
