package fpga

import (
	"fmt"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// Topology generalizes Platform to heterogeneous systems — the "actual
// multi-FPGA based systems" of the paper's future work, where devices
// differ in capacity and links differ in rate (e.g. serial cables between
// ring neighbors, a slower shared backplane elsewhere). A zero link
// bandwidth means the pair is not directly connected; mappings placing
// traffic on such a pair are statically rejected (the model does no
// multi-hop routing).
type Topology struct {
	// Resources[i] is FPGA i's capacity.
	Resources []int64
	// LinkBW[i][j] is the link rate (tokens/cycle) between FPGAs i and j;
	// must be symmetric with a zero diagonal.
	LinkBW [][]int64
}

// NumFPGAs returns the device count.
func (t *Topology) NumFPGAs() int { return len(t.Resources) }

// Validate checks structural sanity.
func (t *Topology) Validate() error {
	n := len(t.Resources)
	if n < 1 {
		return fmt.Errorf("fpga: topology needs >= 1 FPGA")
	}
	if len(t.LinkBW) != n {
		return fmt.Errorf("fpga: LinkBW has %d rows, want %d", len(t.LinkBW), n)
	}
	for i := 0; i < n; i++ {
		if t.Resources[i] <= 0 {
			return fmt.Errorf("fpga: FPGA %d has non-positive capacity %d", i, t.Resources[i])
		}
		if len(t.LinkBW[i]) != n {
			return fmt.Errorf("fpga: LinkBW row %d has %d entries, want %d", i, len(t.LinkBW[i]), n)
		}
		if t.LinkBW[i][i] != 0 {
			return fmt.Errorf("fpga: LinkBW diagonal [%d][%d] must be zero", i, i)
		}
		for j := 0; j < n; j++ {
			if t.LinkBW[i][j] < 0 {
				return fmt.Errorf("fpga: negative link bandwidth [%d][%d]", i, j)
			}
			if t.LinkBW[i][j] != t.LinkBW[j][i] {
				return fmt.Errorf("fpga: asymmetric link bandwidth [%d][%d]", i, j)
			}
		}
	}
	return nil
}

// Uniform builds the homogeneous topology equivalent to a Platform.
func Uniform(n int, rmax, linkBW int64) *Topology {
	t := &Topology{
		Resources: make([]int64, n),
		LinkBW:    make([][]int64, n),
	}
	for i := 0; i < n; i++ {
		t.Resources[i] = rmax
		t.LinkBW[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			if i != j {
				t.LinkBW[i][j] = linkBW
			}
		}
	}
	return t
}

// RingTopology connects n FPGAs in a ring with fast neighbor links and a
// slower all-to-all backplane (0 disables the backplane).
func RingTopology(n int, rmax, neighborBW, backplaneBW int64) *Topology {
	t := Uniform(n, rmax, backplaneBW)
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		if i != j {
			t.LinkBW[i][j] = neighborBW
			t.LinkBW[j][i] = neighborBW
		}
	}
	return t
}

// TopologyCheck is the static verdict of a mapping on a topology.
type TopologyCheck struct {
	// Feasible is true when every FPGA fits, every connected pair is
	// within bandwidth, and no traffic lands on a missing link.
	Feasible bool
	// ResourceViolations lists FPGAs over capacity (FPGA id, load).
	ResourceViolations []metrics.Violation
	// BandwidthViolations lists over-budget pairs.
	BandwidthViolations []metrics.Violation
	// MissingLinks lists pairs with traffic but no link.
	MissingLinks [][2]int
	// LinkTraffic is the pairwise traffic matrix.
	LinkTraffic [][]int64
}

// CheckMapping statically validates parts (a partitioner assignment with
// one part per FPGA) against the topology, using the lowered graph g.
// Unlike the uniform Platform check, every pair is held to its own link
// budget. The link budget is interpreted in the same unit as g's edge
// weights (tokens per nominal round) scaled by `rounds` — pass rounds=1
// when edge weights are already rates.
func (t *Topology) CheckMapping(g *graph.Graph, parts []int, rounds int64) (*TopologyCheck, error) {
	if err := t.Validate(); err != nil {
		return nil, err
	}
	n := t.NumFPGAs()
	if len(parts) != g.NumNodes() {
		return nil, fmt.Errorf("fpga: mapping covers %d processes, network has %d", len(parts), g.NumNodes())
	}
	for i, p := range parts {
		if p < 0 || p >= n {
			return nil, fmt.Errorf("fpga: process %d mapped to missing FPGA %d", i, p)
		}
	}
	if rounds < 1 {
		rounds = 1
	}
	out := &TopologyCheck{
		LinkTraffic: metrics.BandwidthMatrix(g, parts, n),
	}
	res := metrics.PartResources(g, parts, n)
	for i, r := range res {
		if r > t.Resources[i] {
			out.ResourceViolations = append(out.ResourceViolations, metrics.Violation{
				Kind: "resource", PartA: i, PartB: -1, Value: r, Limit: t.Resources[i],
			})
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			traffic := out.LinkTraffic[i][j]
			if traffic == 0 {
				continue
			}
			budget := t.LinkBW[i][j] * rounds
			if t.LinkBW[i][j] == 0 {
				out.MissingLinks = append(out.MissingLinks, [2]int{i, j})
				continue
			}
			if traffic > budget {
				out.BandwidthViolations = append(out.BandwidthViolations, metrics.Violation{
					Kind: "bandwidth", PartA: i, PartB: j, Value: traffic, Limit: budget,
				})
			}
		}
	}
	out.Feasible = len(out.ResourceViolations) == 0 &&
		len(out.BandwidthViolations) == 0 && len(out.MissingLinks) == 0
	return out, nil
}
