package match

import (
	"math/rand"
	"testing"

	"ppnpart/internal/graph"
)

func benchGraph(n int) *graph.Graph {
	rng := rand.New(rand.NewSource(1))
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(1 + rng.Intn(100))
	}
	g := graph.NewWithWeights(w)
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.Node(i-1), graph.Node(i), int64(1+rng.Intn(20)))
	}
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(graph.Node(u), graph.Node(v), int64(1+rng.Intn(20)))
		}
	}
	return g
}

func BenchmarkRandomMatching(b *testing.B) {
	g := benchGraph(10000)
	rng := rand.New(rand.NewSource(2))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Random(g, rng)
	}
}

func BenchmarkHeavyEdgeMatching(b *testing.B) {
	g := benchGraph(10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = HeavyEdge(g)
	}
}

func BenchmarkKMeansMatching(b *testing.B) {
	g := benchGraph(10000)
	rng := rand.New(rand.NewSource(3))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KMeans(g, 4, rng)
	}
}
