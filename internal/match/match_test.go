package match

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"ppnpart/internal/graph"
)

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(1 + rng.Intn(40))
	}
	g := graph.NewWithWeights(w)
	// Spanning path guarantees connectivity, plus extra random edges.
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.Node(i-1), graph.Node(i), int64(1+rng.Intn(20)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(graph.Node(u), graph.Node(v), int64(1+rng.Intn(20)))
		}
	}
	return g
}

// isMaximal reports whether no edge has both endpoints unmatched.
func isMaximal(g *graph.Graph, m Matching) bool {
	for _, e := range g.Edges() {
		if m[e.U] == Unmatched && m[e.V] == Unmatched {
			return false
		}
	}
	return true
}

func TestNewMatchingAllUnmatched(t *testing.T) {
	m := NewMatching(5)
	for i, v := range m {
		if v != Unmatched {
			t.Fatalf("node %d initialized matched", i)
		}
	}
	if m.Pairs() != 0 {
		t.Fatal("fresh matching has pairs")
	}
}

func TestMatchingValidateCatchesBadPairs(t *testing.T) {
	g := graph.New(4)
	g.MustAddEdge(0, 1, 1)
	m := NewMatching(4)
	m[0], m[1] = 1, 0
	if err := m.Validate(g); err != nil {
		t.Fatalf("valid matching rejected: %v", err)
	}
	// Asymmetric.
	m2 := NewMatching(4)
	m2[0] = 1
	if err := m2.Validate(g); err == nil {
		t.Fatal("asymmetric matching accepted")
	}
	// Self match.
	m3 := NewMatching(4)
	m3[2] = 2
	if err := m3.Validate(g); err == nil {
		t.Fatal("self match accepted")
	}
	// Non-adjacent pair.
	m4 := NewMatching(4)
	m4[2], m4[3] = 3, 2
	if err := m4.Validate(g); err == nil {
		t.Fatal("non-adjacent pair accepted")
	}
	// Wrong length.
	m5 := NewMatching(3)
	if err := m5.Validate(g); err == nil {
		t.Fatal("wrong-length matching accepted")
	}
	// Out of range.
	m6 := NewMatching(4)
	m6[0] = 9
	if err := m6.Validate(g); err == nil {
		t.Fatal("out-of-range partner accepted")
	}
}

func TestRandomMatchingValidAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 2+rng.Intn(50))
		m := Random(g, rng)
		if err := m.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !isMaximal(g, m) {
			t.Fatalf("trial %d: matching not maximal", trial)
		}
	}
}

func TestRandomMatchingDeterministicForSeed(t *testing.T) {
	g := randomConnected(rand.New(rand.NewSource(7)), 30)
	m1 := Random(g, rand.New(rand.NewSource(42)))
	m2 := Random(g, rand.New(rand.NewSource(42)))
	for i := range m1 {
		if m1[i] != m2[i] {
			t.Fatal("same seed produced different matchings")
		}
	}
}

func TestHeavyEdgePrefersHeavyEdges(t *testing.T) {
	// Star-ish: 0-1 weight 100, 1-2 weight 1, 2-3 weight 100.
	g := graph.New(4)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 100)
	m := HeavyEdge(g)
	if m[0] != 1 || m[2] != 3 {
		t.Fatalf("heavy edges not matched: %v", m)
	}
	if m.MatchedWeight(g) != 200 {
		t.Fatalf("matched weight = %d, want 200", m.MatchedWeight(g))
	}
}

func TestHeavyEdgeValidMaximalDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 2+rng.Intn(50))
		m := HeavyEdge(g)
		if err := m.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !isMaximal(g, m) {
			t.Fatalf("trial %d: not maximal", trial)
		}
		m2 := HeavyEdge(g)
		for i := range m {
			if m[i] != m2[i] {
				t.Fatal("HeavyEdge nondeterministic")
			}
		}
	}
}

func TestHeavyEdgeBeatsOrTiesRandomOnMatchedWeight(t *testing.T) {
	// Statistical sanity: on average over many graphs, HEM's matched weight
	// should be at least Random's. Compare totals to tolerate outliers.
	rng := rand.New(rand.NewSource(11))
	var hemTotal, rndTotal int64
	for trial := 0; trial < 30; trial++ {
		g := randomConnected(rng, 40)
		hemTotal += HeavyEdge(g).MatchedWeight(g)
		rndTotal += Random(g, rng).MatchedWeight(g)
	}
	if hemTotal < rndTotal {
		t.Fatalf("HEM total matched weight %d < random %d", hemTotal, rndTotal)
	}
}

func TestKMeansValidAndMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 2+rng.Intn(50))
		m := KMeans(g, 4, rng)
		if err := m.Validate(g); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !isMaximal(g, m) {
			t.Fatalf("trial %d: not maximal", trial)
		}
	}
}

func TestKMeansDegenerateClusterCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g := randomConnected(rng, 10)
	for _, k := range []int{-1, 0, 1, 10, 100} {
		m := KMeans(g, k, rng)
		if err := m.Validate(g); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
	}
	empty := graph.New(0)
	if m := KMeans(empty, 3, rng); len(m) != 0 {
		t.Fatal("empty graph should give empty matching")
	}
}

func TestKMeansPairsSimilarWeights(t *testing.T) {
	// Two weight classes on a complete bipartite-ish graph: heavy nodes
	// 0,1 (weight 100) and light nodes 2,3 (weight 1), all adjacent.
	g := graph.NewWithWeights([]int64{100, 100, 1, 1})
	for u := 0; u < 4; u++ {
		for v := u + 1; v < 4; v++ {
			g.MustAddEdge(graph.Node(u), graph.Node(v), 1)
		}
	}
	// With 2 clusters the heavy pair and light pair should match together
	// for most seeds; check a fixed seed known to exercise the same-cluster
	// preference deterministically.
	m := KMeans(g, 2, rand.New(rand.NewSource(1)))
	if err := m.Validate(g); err != nil {
		t.Fatal(err)
	}
	if m[0] != 1 || m[2] != 3 {
		t.Fatalf("expected weight-homogeneous pairs, got %v", m)
	}
}

func TestComputeAndNames(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 20)
	for _, h := range All() {
		m, err := Compute(h, g, 0, rng)
		if err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if err := m.Validate(g); err != nil {
			t.Fatalf("%v: %v", h, err)
		}
		if !h.Valid() {
			t.Fatalf("heuristic %v should be valid", h)
		}
		if h.String() == "" {
			t.Fatalf("heuristic %d has empty name", int(h))
		}
	}
	if Heuristic(99).String() == "" {
		t.Fatal("unknown heuristic should still render")
	}
	if Heuristic(99).Valid() {
		t.Fatal("heuristic 99 should not be valid")
	}
	m, err := Compute(Heuristic(99), g, 0, rng)
	if !errors.Is(err, ErrUnknownHeuristic) {
		t.Fatalf("Compute with unknown heuristic: err = %v, want ErrUnknownHeuristic", err)
	}
	if m != nil {
		t.Fatal("Compute with unknown heuristic returned a matching")
	}
}

func TestPropertyAllHeuristicsValidMaximal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(40))
		for _, h := range All() {
			m, err := Compute(h, g, 3, rng)
			if err != nil || m.Validate(g) != nil || !isMaximal(g, m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyMatchedWeightBounded(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 2+rng.Intn(40))
		for _, h := range All() {
			m, err := Compute(h, g, 3, rng)
			if err != nil {
				return false
			}
			w := m.MatchedWeight(g)
			if w < 0 || w > g.TotalEdgeWeight() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
