// Package match implements the three matching heuristics the paper's
// coarsening phase runs in competition (§IV-A): Random Maximal Matching,
// Heavy-Edge Matching, and K-Means Matching. A matching pairs up adjacent
// nodes; the coarsener contracts every matched pair into one coarse node.
package match

import (
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"slices"
	"sort"

	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
)

// ErrUnknownHeuristic is returned (wrapped) by Compute when asked for a
// heuristic outside the known set.
var ErrUnknownHeuristic = errors.New("match: unknown heuristic")

// Unmatched marks a node left single by a matching.
const Unmatched graph.Node = -1

// Matching maps each node to its partner, or Unmatched. A valid matching
// is symmetric (m[u]==v ⇒ m[v]==u), irreflexive, and only pairs adjacent
// nodes.
type Matching []graph.Node

// NewMatching returns an all-unmatched matching over n nodes.
func NewMatching(n int) Matching {
	m := make(Matching, n)
	for i := range m {
		m[i] = Unmatched
	}
	return m
}

// Pairs returns the number of matched pairs.
func (m Matching) Pairs() int {
	c := 0
	for u, v := range m {
		if v != Unmatched && graph.Node(u) < v {
			c++
		}
	}
	return c
}

// Validate checks the matching invariants against g.
func (m Matching) Validate(g *graph.Graph) error {
	if len(m) != g.NumNodes() {
		return fmt.Errorf("match: length %d != nodes %d", len(m), g.NumNodes())
	}
	for u, v := range m {
		if v == Unmatched {
			continue
		}
		if v == graph.Node(u) {
			return fmt.Errorf("match: node %d matched to itself", u)
		}
		if int(v) < 0 || int(v) >= len(m) {
			return fmt.Errorf("match: node %d matched to out-of-range %d", u, v)
		}
		if m[v] != graph.Node(u) {
			return fmt.Errorf("match: asymmetric pair (%d,%d)", u, v)
		}
		if !g.HasEdge(graph.Node(u), v) {
			return fmt.Errorf("match: pair (%d,%d) not adjacent", u, v)
		}
	}
	return nil
}

// MatchedWeight returns the total weight of matched edges — the weight
// that contraction removes from the graph. Heavier is generally better:
// hidden intra-pair traffic can never be cut.
func (m Matching) MatchedWeight(g *graph.Graph) int64 {
	var s int64
	for u, v := range m {
		if v != Unmatched && graph.Node(u) < v {
			s += g.EdgeWeight(graph.Node(u), v)
		}
	}
	return s
}

// Random computes a Random Maximal Matching: nodes are visited in random
// order; each unmatched node grabs a random unmatched neighbor. The result
// is maximal: no edge has both endpoints unmatched.
func Random(g *graph.Graph, rng *rand.Rand) Matching {
	ws := arena.Get()
	defer arena.Put(ws)
	return randomWS(ws, g, rng)
}

// HeavyEdge computes a Heavy-Edge Matching: edges are visited in
// descending weight order (ties broken by endpoint ids for determinism)
// and selected when both endpoints are free. This is the matching that
// most reduces the exposed edge weight, per Karypis–Kumar.
//
// The comparator is a total order (edges are unique by endpoint pair), so
// the sorted sequence — and hence the matching — is independent of the
// sorting algorithm; the generic non-stable sort avoids the reflection
// overhead that used to dominate coarsening time.
func HeavyEdge(g *graph.Graph) Matching {
	ws := arena.Get()
	defer arena.Put(ws)
	return heavyEdgeWS(ws, g)
}

// KMeans computes the paper's K-Means Matching: nodes are clustered by
// node weight into nClusters groups (1-D k-means on the weight axis), and
// matching is attempted preferentially inside a cluster — pairing
// similar-weight processes keeps coarse node weights homogeneous, which
// eases the resource-balancing of the initial partitioner. Nodes whose
// cluster offers no free adjacent partner fall back to any free neighbor
// so the matching stays maximal.
func KMeans(g *graph.Graph, nClusters int, rng *rand.Rand) Matching {
	ws := arena.Get()
	defer arena.Put(ws)
	return kMeansWS(ws, g, nClusters, rng)
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// Heuristic names the matching strategies for options and reports.
type Heuristic int

const (
	// HeuristicRandom is Random Maximal Matching.
	HeuristicRandom Heuristic = iota
	// HeuristicHeavyEdge is Heavy-Edge Matching.
	HeuristicHeavyEdge
	// HeuristicKMeans is K-Means (weight-clustered) Matching.
	HeuristicKMeans
)

// String returns the heuristic's name.
func (h Heuristic) String() string {
	switch h {
	case HeuristicRandom:
		return "random"
	case HeuristicHeavyEdge:
		return "heavy-edge"
	case HeuristicKMeans:
		return "k-means"
	default:
		return fmt.Sprintf("heuristic(%d)", int(h))
	}
}

// Valid reports whether h names one of the known heuristics.
func (h Heuristic) Valid() bool {
	switch h {
	case HeuristicRandom, HeuristicHeavyEdge, HeuristicKMeans:
		return true
	}
	return false
}

// UsesRNG reports whether the heuristic consumes random numbers. The
// parallel best-of-three matching keeps every RNG-consuming heuristic on
// one goroutine, in declaration order, sharing the level's stream — which
// is what makes the parallel coarsener draw the exact sequence a serial
// run would, bit for bit. RNG-free heuristics run concurrently.
func (h Heuristic) UsesRNG() bool {
	switch h {
	case HeuristicRandom, HeuristicKMeans:
		return true
	default:
		return false
	}
}

// Compute runs the named heuristic. kClusters is only used by KMeans; a
// value <= 0 defaults to 4 weight clusters. An unknown heuristic yields
// an error wrapping ErrUnknownHeuristic.
func Compute(h Heuristic, g *graph.Graph, kClusters int, rng *rand.Rand) (Matching, error) {
	ws := arena.Get()
	defer arena.Put(ws)
	return ComputeWS(ws, h, g, kClusters, rng)
}

// ComputeWS is Compute with every internal buffer (visit permutations,
// candidate lists, the edge sort array, k-means scratch) drawn from ws.
// The returned Matching itself is freshly allocated — it outlives the
// call — but everything transient is pooled.
func ComputeWS(ws *arena.Workspace, h Heuristic, g *graph.Graph, kClusters int, rng *rand.Rand) (Matching, error) {
	switch h {
	case HeuristicRandom:
		return randomWS(ws, g, rng), nil
	case HeuristicHeavyEdge:
		return heavyEdgeWS(ws, g), nil
	case HeuristicKMeans:
		if kClusters <= 0 {
			kClusters = 4
		}
		return kMeansWS(ws, g, kClusters, rng), nil
	default:
		return nil, fmt.Errorf("%w %d", ErrUnknownHeuristic, int(h))
	}
}

// permInto fills out with a random permutation of [0, len(out)), drawing
// from rng the exact sequence rand.Perm draws — same loop, same Intn
// calls — so pooled and allocating runs consume identical RNG streams.
// The i = 0 iteration is a no-op swap but still burns one Intn(1) draw,
// exactly as rand.Perm does (its loop keeps that draw for Go 1 stream
// compatibility); starting at i = 1 would desynchronize every RNG
// consumer downstream of a matching pass.
func permInto(rng *rand.Rand, out []int) {
	for i := 0; i < len(out); i++ {
		j := rng.Intn(i + 1)
		out[i] = out[j]
		out[j] = i
	}
}

// randomWS is Random with the visit order and candidate list pooled.
func randomWS(ws *arena.Workspace, g *graph.Graph, rng *rand.Rand) Matching {
	n := g.NumNodes()
	m := NewMatching(n)
	order := ws.Ints.Cap(n)[:n]
	permInto(rng, order)
	cand := ws.Nodes.Cap(8)
	for _, ui := range order {
		u := graph.Node(ui)
		if m[u] != Unmatched {
			continue
		}
		cand = cand[:0]
		for _, h := range g.Neighbors(u) {
			if m[h.To] == Unmatched {
				cand = append(cand, h.To)
			}
		}
		if len(cand) == 0 {
			continue
		}
		v := cand[rng.Intn(len(cand))]
		m[u], m[v] = v, u
	}
	ws.Ints.Put(order)
	ws.Nodes.Put(cand)
	return m
}

// heavyEdgeWS is HeavyEdge with the edge sort array pooled. When the sort
// key fits, edges are packed into single int64 keys — (inverted weight,
// u, v) in descending-weight lexicographic layout — and sorted with the
// branch-lean primitive sort; the packed integer order is exactly the
// struct comparator's total order, so the matching is bit-identical to
// the comparator path, which remains as the general fallback.
func heavyEdgeWS(ws *arena.Workspace, g *graph.Graph) Matching {
	n := g.NumNodes()
	if idBits := bits.Len(uint(n)); n > 0 && 2*idBits < 63 &&
		g.TotalEdgeWeight() < int64(1)<<(63-2*idBits) {
		return heavyEdgePackedWS(ws, g, uint(idBits))
	}
	edges := ws.Edges.Cap(g.NumEdges())
	for u := 0; u < n; u++ {
		for _, h := range g.Neighbors(graph.Node(u)) {
			if graph.Node(u) < h.To {
				edges = append(edges, graph.Edge{U: graph.Node(u), V: h.To, Weight: h.Weight})
			}
		}
	}
	slices.SortFunc(edges, func(a, b graph.Edge) int {
		switch {
		case a.Weight != b.Weight:
			if a.Weight > b.Weight {
				return -1
			}
			return 1
		case a.U != b.U:
			return int(a.U) - int(b.U)
		default:
			return int(a.V) - int(b.V)
		}
	})
	m := NewMatching(n)
	for _, e := range edges {
		if m[e.U] == Unmatched && m[e.V] == Unmatched {
			m[e.U], m[e.V] = e.V, e.U
		}
	}
	ws.Edges.Put(edges)
	return m
}

// heavyEdgePackedWS is the packed-key fast path of heavyEdgeWS. Every
// weight is bounded by the total edge weight, so invW = total - w is
// non-negative and ascending invW is descending w; placing invW in the
// high bits and u, v (each < 2^idBits) below yields an integer whose
// natural order is the comparator's (weight desc, u asc, v asc). Keys are
// unique (one per endpoint pair), so sort stability is irrelevant.
func heavyEdgePackedWS(ws *arena.Workspace, g *graph.Graph, idBits uint) Matching {
	n := g.NumNodes()
	total := g.TotalEdgeWeight()
	mask := int64(1)<<idBits - 1
	keys := ws.Int64s.Cap(g.NumEdges())
	for u := 0; u < n; u++ {
		for _, h := range g.Neighbors(graph.Node(u)) {
			if graph.Node(u) < h.To {
				keys = append(keys, (total-h.Weight)<<(2*idBits)|
					int64(u)<<idBits|int64(h.To))
			}
		}
	}
	slices.Sort(keys)
	m := NewMatching(n)
	for _, key := range keys {
		u := graph.Node(key >> idBits & mask)
		v := graph.Node(key & mask)
		if m[u] == Unmatched && m[v] == Unmatched {
			m[u], m[v] = v, u
		}
	}
	ws.Int64s.Put(keys)
	return m
}

// kMeansWS is KMeans with the cluster table, visit order, candidate
// lists, and Lloyd-iteration scratch pooled.
func kMeansWS(ws *arena.Workspace, g *graph.Graph, nClusters int, rng *rand.Rand) Matching {
	n := g.NumNodes()
	m := NewMatching(n)
	if n == 0 {
		return m
	}
	if nClusters < 1 {
		nClusters = 1
	}
	if nClusters > n {
		nClusters = n
	}
	cluster := kmeans1DWS(ws, g, nClusters)

	order := ws.Ints.Cap(n)[:n]
	permInto(rng, order)
	sameCluster := ws.Nodes.Cap(8)
	other := ws.Nodes.Cap(8)
	for _, ui := range order {
		u := graph.Node(ui)
		if m[u] != Unmatched {
			continue
		}
		sameCluster = sameCluster[:0]
		other = other[:0]
		for _, h := range g.Neighbors(u) {
			if m[h.To] != Unmatched {
				continue
			}
			if cluster[h.To] == cluster[u] {
				sameCluster = append(sameCluster, h.To)
			} else {
				other = append(other, h.To)
			}
		}
		var v graph.Node
		switch {
		case len(sameCluster) > 0:
			v = sameCluster[rng.Intn(len(sameCluster))]
		case len(other) > 0:
			v = other[rng.Intn(len(other))]
		default:
			continue
		}
		m[u], m[v] = v, u
	}
	ws.Ints.Put(order)
	ws.Ints.Put(cluster)
	ws.Nodes.Put(sameCluster)
	ws.Nodes.Put(other)
	return m
}

// kmeans1DWS is kmeans1D with every buffer drawn from ws. The returned
// cluster table comes from ws.Ints; the caller puts it back.
func kmeans1DWS(ws *arena.Workspace, g *graph.Graph, k int) []int {
	n := g.NumNodes()
	cluster := ws.Ints.Get(n)
	if k == 1 || n <= k {
		for i := range cluster {
			if n <= k {
				cluster[i] = i % k
			}
		}
		return cluster
	}
	wts := ws.Floats.Cap(n)[:n]
	for u := 0; u < n; u++ {
		wts[u] = float64(g.NodeWeight(graph.Node(u)))
	}
	sorted := append(ws.Floats.Cap(n), wts...)
	sort.Float64s(sorted)
	centroids := ws.Floats.Cap(k)[:k]
	for i := range centroids {
		centroids[i] = sorted[(i*(n-1))/(k-1)]
	}
	sum := ws.Floats.Cap(k)[:k]
	cnt := ws.Ints.Cap(k)[:k]
	for iter := 0; iter < 30; iter++ {
		changed := false
		for u := 0; u < n; u++ {
			best, bestD := 0, absF(wts[u]-centroids[0])
			for c := 1; c < k; c++ {
				d := absF(wts[u] - centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if cluster[u] != best {
				cluster[u] = best
				changed = true
			}
		}
		for c := 0; c < k; c++ {
			sum[c], cnt[c] = 0, 0
		}
		for u := 0; u < n; u++ {
			sum[cluster[u]] += wts[u]
			cnt[cluster[u]]++
		}
		for c := 0; c < k; c++ {
			if cnt[c] > 0 {
				centroids[c] = sum[c] / float64(cnt[c])
			}
		}
		if !changed {
			break
		}
	}
	ws.Floats.Put(wts)
	ws.Floats.Put(sorted)
	ws.Floats.Put(centroids)
	ws.Floats.Put(sum)
	ws.Ints.Put(cnt)
	return cluster
}

// All lists every heuristic, in the order the paper names them.
func All() []Heuristic {
	return []Heuristic{HeuristicRandom, HeuristicHeavyEdge, HeuristicKMeans}
}
