// Package stream is the single-pass streaming partitioner for graphs too
// large for the full multilevel hierarchy. Vertices are assigned in stream
// order by a penalized greedy objective (Battaglino-style, as in the
// HyperPRAW restreaming partitioner): the affinity to each part — the
// total edge weight into neighbors already placed there — minus a convex
// imbalance penalty alpha·((r+w)^gamma − r^gamma) on the part's resource
// load, minus a dominant penalty on any increase of the pairwise
// bandwidth excess over Bmax. Parts whose Rmax budget the vertex would
// break are ineligible (with a least-loaded fallback so every vertex is
// always assigned exactly once).
//
// A restreaming loop then re-feeds the stream with the previous
// assignment as prior: each pass recomputes every vertex's best part as a
// pure function of the previous pass's full assignment and part totals (a
// synchronous sweep, so it parallelizes over contiguous vertex chunks
// writing per-vertex slots — bit-identical for any Workers count), and the
// pass is accepted only when the canonical feasibility-first score,
// maintained through internal/pstate, strictly improves. The loop stops on
// the first rejected or moveless pass or at MaxIterations, which makes the
// accepted score trajectory monotonically non-worsening by construction —
// the property suite in this package pins that, and pins the maintained
// cut/bandwidth totals bit-identical to a from-scratch metrics recompute.
//
// Memory is O(K² + n) beyond the CSR snapshot, pooled on an
// internal/arena workspace: no hierarchy, no per-level copies — O(1)
// amortized per vertex, which is what lets BenchmarkScaleGP reach n=10^6.
package stream

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"

	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pool"
	"ppnpart/internal/pstate"
)

// Order selects the vertex stream order.
type Order int

const (
	// OrderNatural streams vertices by ascending id (the arrival order of
	// a PPN compiler emitting processes; the default).
	OrderNatural Order = iota
	// OrderShuffle streams a seeded Fisher-Yates permutation of the ids.
	OrderShuffle
)

// Options configures the streaming partitioner.
type Options struct {
	// K is the number of parts. Required.
	K int
	// Constraints carries Bmax and Rmax; zero values disable a bound.
	// Rmax is a hard cap during assignment (a part the vertex would
	// overflow is ineligible while any eligible part remains); any
	// bandwidth-excess increase over Bmax is penalized dominantly.
	Constraints metrics.Constraints
	// Gamma is the imbalance penalty exponent (default 1.5, the HyperPRAW
	// setting; must be >= 1: the penalty is convex so heavier parts repel
	// marginal load harder).
	Gamma float64
	// Alpha scales the imbalance penalty. Non-positive derives the
	// Battaglino coefficient sqrt(K)·EdgeWT/NodeWT^Gamma from the graph
	// totals, which keeps the penalty commensurate with edge affinities.
	Alpha float64
	// MaxIterations caps the restream passes after the initial stream
	// (default 8; negative disables restreaming).
	MaxIterations int
	// Workers fans the restream sweeps out over contiguous vertex chunks
	// (default GOMAXPROCS). Every value produces bit-identical results:
	// a pass is a pure function of the previous pass's assignment.
	Workers int
	// Pool executes the sweep chunks (nil: the shared pool.Default()).
	// The chunk split is fixed by Workers, so the pool width cannot
	// change any result bit either.
	Pool *pool.Pool
	// Seed drives OrderShuffle (default 1); OrderNatural ignores it.
	Seed int64
	// Order selects the stream order (default OrderNatural).
	Order Order
}

// withDefaults fills unset fields.
func (o Options) withDefaults() Options {
	if o.Gamma == 0 {
		o.Gamma = 1.5
	}
	if o.MaxIterations == 0 {
		o.MaxIterations = 8
	}
	if o.MaxIterations < 0 {
		o.MaxIterations = 0
	}
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// validate rejects configurations the streamer cannot honor.
func (o Options) validate() error {
	if o.K <= 0 {
		return fmt.Errorf("stream: K = %d must be positive", o.K)
	}
	if o.Constraints.Bmax < 0 {
		return fmt.Errorf("stream: negative Bmax %d", o.Constraints.Bmax)
	}
	if o.Constraints.Rmax < 0 {
		return fmt.Errorf("stream: negative Rmax %d", o.Constraints.Rmax)
	}
	if o.Gamma != 0 && o.Gamma < 1 {
		return fmt.Errorf("stream: Gamma = %v must be >= 1 (or 0 for the default)", o.Gamma)
	}
	if o.Order != OrderNatural && o.Order != OrderShuffle {
		return fmt.Errorf("stream: unknown order %d", o.Order)
	}
	return nil
}

// IterTrace records one streaming pass: the initial stream (Iter 0) and
// every restream pass that ran. Cut, the constraint excesses and Score are
// the pstate-maintained canonical values of the pass's assignment.
type IterTrace struct {
	// Iter is the pass index (0 = initial stream or supplied prior).
	Iter int `json:"iter"`
	// Moves counts vertices whose part changed in this pass (n on the
	// initial stream, 0 for a supplied prior).
	Moves int `json:"moves"`
	// Cut is the global edge cut after the pass.
	Cut int64 `json:"cut"`
	// BandwidthExcess and ResourceExcess are the total constraint
	// overflows after the pass (the per-pass imbalance record).
	BandwidthExcess int64 `json:"bandwidth_excess"`
	ResourceExcess  int64 `json:"resource_excess"`
	// Score is the feasibility-first goodness (pstate.State.Score).
	Score float64 `json:"score"`
	// Accepted reports whether the pass's assignment was kept. Only the
	// final pass of a run can be rejected; the accepted score trajectory
	// is monotonically non-worsening.
	Accepted bool `json:"accepted"`
}

// Result is a finished streaming run.
type Result struct {
	// Parts is the final accepted assignment.
	Parts []int
	// K echoes the part count.
	K int
	// Feasible and Goodness are the canonical pstate evaluation of Parts
	// (bit-identical to the metrics package's from-scratch functions).
	Feasible bool
	Goodness float64
	// Cut is the global edge cut of Parts.
	Cut int64
	// Iterations counts the accepted restream passes.
	Iterations int
	// Iters is the per-pass trajectory, initial stream first.
	Iters []IterTrace
	// Shards and StitchMoves describe a sharded-ingest run: the number of
	// streamed shards and the boundary moves of the BatchKWayWS stitch
	// (zero for single-stream runs).
	Shards      int
	StitchMoves int
	// Stopped reports context cancellation between passes; Parts then
	// holds the last accepted assignment.
	Stopped bool
}

// Partition streams g into opts.K parts.
func Partition(g *graph.Graph, opts Options) (*Result, error) {
	return PartitionCtx(context.Background(), g, opts)
}

// PartitionCtx is Partition under a context, honored between passes: on
// cancellation the last accepted assignment is returned with
// Result.Stopped set (never an error for cancellation alone).
func PartitionCtx(ctx context.Context, g *graph.Graph, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	ws := arena.Get()
	res, err := run(ctx, ws, g.ToCSR(), opts, nil)
	if err == nil {
		res.Parts = append([]int(nil), res.Parts...)
	}
	arena.Put(ws)
	return res, err
}

// PartitionCSRWS streams a prebuilt CSR snapshot, drawing all scratch —
// including Result.Parts — from ws. The caller owns the workspace: the
// returned assignment is only valid until the workspace is recycled. The
// engine's stream-seeding stage uses this form.
func PartitionCSRWS(ctx context.Context, ws *arena.Workspace, csr *graph.CSR, opts Options) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	return run(ctx, ws, csr, opts, nil)
}

// chooser scores candidate parts for one vertex against part totals. The
// same rule serves the batch streamer and the online Ingest.
type chooser struct {
	k      int
	cons   metrics.Constraints
	gamma  float64
	alpha  float64
	bwBase float64 // dominant weight on bandwidth-excess increases
	res    []int64 // per-part resource totals (live view)
	bw     []int64 // k×k bandwidth matrix, row-major (live view)
}

// over is the excess of v above lim (0 when lim disables the bound).
func over(v, lim int64) int64 {
	if lim > 0 && v > lim {
		return v - lim
	}
	return 0
}

// bwExcessDelta is the change of the total pairwise bandwidth excess if a
// vertex with per-part affinity conn (touched = parts with conn > 0)
// moves from part `from` (-1 when unassigned) to part `to`. Mirrors
// pstate.State.MoveDelta's bandwidth term.
func (c *chooser) bwExcessDelta(to, from int, conn []int64, touched []int) int64 {
	if c.cons.Bmax <= 0 || to == from {
		return 0
	}
	k, bmax := c.k, c.cons.Bmax
	var delta int64
	if from < 0 {
		for _, q := range touched {
			if q == to {
				continue
			}
			tq := c.bw[to*k+q]
			delta += over(tq+conn[q], bmax) - over(tq, bmax)
		}
		return delta
	}
	for _, q := range touched {
		if q == from || q == to {
			continue
		}
		fq := c.bw[from*k+q]
		delta += over(fq-conn[q], bmax) - over(fq, bmax)
		tq := c.bw[to*k+q]
		delta += over(tq+conn[q], bmax) - over(tq, bmax)
	}
	ft := c.bw[from*k+to]
	delta += over(ft-conn[to]+conn[from], bmax) - over(ft, bmax)
	return delta
}

// score rates moving a vertex of weight w from part `from` (-1 when
// unassigned) into part p: affinity minus the convex imbalance penalty
// minus the dominant bandwidth-excess penalty. Higher is better.
func (c *chooser) score(p int, w int64, from int, conn []int64, touched []int) float64 {
	load := c.res[p]
	if p == from {
		load -= w
	}
	sc := float64(conn[p])
	if c.alpha > 0 {
		sc -= c.alpha * (math.Pow(float64(load+w), c.gamma) - math.Pow(float64(load), c.gamma))
	}
	if d := c.bwExcessDelta(p, from, conn, touched); d != 0 {
		sc -= c.bwBase * float64(d)
	}
	return sc
}

// pick returns the part for a vertex of weight w. In a restream pass
// (from >= 0) ties keep the vertex in place; among other parts the lowest
// id wins. On first assignment (from == -1) parts the vertex would push
// over Rmax are ineligible; when every part is full the least-loaded part
// takes the vertex anyway, so the stream always assigns.
func (c *chooser) pick(w int64, from int, conn []int64, touched []int) int {
	best, bestScore := from, math.Inf(-1)
	if from >= 0 {
		bestScore = c.score(from, w, from, conn, touched)
	}
	for p := 0; p < c.k; p++ {
		if p == from {
			continue
		}
		if lim := c.cons.RmaxFor(p); lim > 0 && c.res[p]+w > lim {
			continue
		}
		if sc := c.score(p, w, from, conn, touched); sc > bestScore {
			best, bestScore = p, sc
		}
	}
	if best >= 0 {
		return best
	}
	// Every part is over budget for this vertex: least-loaded fallback.
	best = 0
	for p := 1; p < c.k; p++ {
		if c.res[p] < c.res[best] {
			best = p
		}
	}
	return best
}

// deriveAlpha is the Battaglino penalty coefficient sqrt(K)·m/n^gamma,
// lifted to weighted graphs (m -> total edge weight, n -> total node
// weight) so the marginal penalty stays commensurate with affinities.
func deriveAlpha(k int, edgeWT, nodeWT int64, gamma float64) float64 {
	if nodeWT <= 0 {
		return 0
	}
	return math.Sqrt(float64(k)) * float64(edgeWT) / math.Pow(float64(nodeWT), gamma)
}

// streamer is the batch (full-CSR) streaming state, workspace-pooled.
type streamer struct {
	chooser
	ws   *arena.Workspace
	csr  *graph.CSR
	opts Options
	n    int

	parts []int
	cut   int64
}

// run executes the initial stream (or adopts prior) plus the restream
// loop. All scratch, including the returned Parts, comes from ws.
func run(ctx context.Context, ws *arena.Workspace, csr *graph.CSR, opts Options, prior []int) (*Result, error) {
	opts = opts.withDefaults()
	n := csr.NumNodes()
	k := opts.K
	s := &streamer{
		chooser: chooser{
			k:      k,
			cons:   opts.Constraints,
			gamma:  opts.Gamma,
			alpha:  opts.Alpha,
			bwBase: float64(csr.EdgeWT + 1),
		},
		ws:   ws,
		csr:  csr,
		opts: opts,
		n:    n,
	}
	if s.alpha <= 0 {
		s.alpha = deriveAlpha(k, csr.EdgeWT, csr.NodeWT, opts.Gamma)
	}
	s.parts = ws.Ints.Cap(n)[:n]
	s.res = zeroed64(&ws.Int64s, k)
	s.bw = zeroed64(&ws.Int64s, k*k)

	res := &Result{K: k}
	moves := n
	if prior == nil {
		s.initialStream()
	} else {
		// A supplied prior (sharded ingest, engine reseed) replaces the
		// initial stream; the pstate build below seeds the running totals.
		copy(s.parts, prior)
		moves = 0
	}

	// Canonical evaluation of each pass through pstate: Score/Feasible are
	// bit-identical to the metrics package, and the accepted state refills
	// the streamer's running totals, so drift cannot accumulate.
	stCfg := pstate.Config{K: k, Constraints: opts.Constraints}
	st, err := pstate.NewWS(ws, csr, s.parts, stCfg)
	if err != nil {
		return nil, err
	}
	score := st.Score()
	res.Feasible = st.Feasible()
	res.Cut = st.Cut()
	res.Iters = append(res.Iters, s.iterTrace(0, moves, true, st))
	s.refresh(st)
	st.Release(ws)

	newParts := ws.Ints.Cap(n)[:n]
	for it := 1; it <= opts.MaxIterations; it++ {
		if ctx.Err() != nil {
			res.Stopped = true
			break
		}
		passMoves := s.restreamSweep(newParts)
		if passMoves == 0 {
			break // converged: no vertex wants to move
		}
		cand, err := pstate.NewWS(ws, csr, newParts, stCfg)
		if err != nil {
			return nil, err
		}
		accepted := cand.Score() < score
		res.Iters = append(res.Iters, s.iterTrace(it, passMoves, accepted, cand))
		if !accepted {
			cand.Release(ws)
			break
		}
		score = cand.Score()
		res.Feasible = cand.Feasible()
		res.Cut = cand.Cut()
		res.Iterations++
		s.parts, newParts = newParts, s.parts
		s.refresh(cand)
		cand.Release(ws)
	}
	ws.Ints.Put(newParts)
	res.Parts = s.parts
	res.Goodness = score
	return res, nil
}

// iterTrace snapshots one pass's canonical evaluation.
func (s *streamer) iterTrace(iter, moves int, accepted bool, st *pstate.State) IterTrace {
	bwEx, resEx, _ := st.Excess()
	return IterTrace{
		Iter:            iter,
		Moves:           moves,
		Cut:             st.Cut(),
		BandwidthExcess: bwEx,
		ResourceExcess:  resEx,
		Score:           st.Score(),
		Accepted:        accepted,
	}
}

// refresh reloads the running totals from an accepted state.
func (s *streamer) refresh(st *pstate.State) {
	k := s.k
	for p := 0; p < k; p++ {
		s.res[p] = st.Resource(p)
		for q := 0; q < k; q++ {
			s.bw[p*k+q] = st.Bandwidth(p, q)
		}
	}
	s.cut = st.Cut()
}

// initialStream assigns every vertex once, in stream order, updating the
// running totals incrementally. Affinities see only already-assigned
// neighbors — the defining property of a single pass over the stream.
func (s *streamer) initialStream() {
	for i := range s.parts {
		s.parts[i] = -1
	}
	order := s.ws.Ints.Cap(s.n)[:s.n]
	for i := range order {
		order[i] = i
	}
	if s.opts.Order == OrderShuffle {
		rng := rand.New(rand.NewSource(s.opts.Seed))
		rng.Shuffle(s.n, func(i, j int) { order[i], order[j] = order[j], order[i] })
	}
	conn := zeroed64(&s.ws.Int64s, s.k)
	touched := s.ws.Ints.Cap(s.k)
	k := s.k
	for _, ui := range order {
		u := graph.Node(ui)
		adj, wts := s.csr.Row(u)
		touched = touched[:0]
		for i, v := range adj {
			q := s.parts[v]
			if q < 0 {
				continue
			}
			if conn[q] == 0 {
				touched = append(touched, q)
			}
			conn[q] += wts[i]
		}
		w := s.csr.NodeW[u]
		p := s.pick(w, -1, conn, touched)
		s.parts[u] = p
		s.res[p] += w
		for _, q := range touched {
			if q == p {
				continue
			}
			s.cut += conn[q]
			s.bw[p*k+q] += conn[q]
			s.bw[q*k+p] += conn[q]
		}
		for _, q := range touched {
			conn[q] = 0
		}
	}
	s.ws.Int64s.Put(conn)
	s.ws.Ints.Put(touched)
	s.ws.Ints.Put(order)
}

// restreamSweep computes every vertex's next part from the previous
// pass's assignment and totals (all read-only during the sweep) into
// newParts, fanned over contiguous chunks. Returns the number of vertices
// whose choice differs from their current part. Chunking cannot change
// any slot, so the sweep is bit-identical for every worker count.
func (s *streamer) restreamSweep(newParts []int) int {
	workers := s.opts.Workers
	if workers > s.n {
		workers = s.n
	}
	if workers == 0 {
		return 0
	}
	chunk := (s.n + workers - 1) / workers
	tasks := (s.n + chunk - 1) / chunk
	moved := make([]int, tasks)
	// Children must be materialized before the pool tasks fork.
	children := make([]*arena.Workspace, tasks)
	for w := 0; w < tasks; w++ {
		children[w] = s.ws.Child(w)
	}
	s.opts.Pool.Run(tasks, func(w int) {
		lo := w * chunk
		hi := lo + chunk
		if hi > s.n {
			hi = s.n
		}
		cws := children[w]
		conn := zeroed64(&cws.Int64s, s.k)
		touched := cws.Ints.Cap(s.k)
		for ui := lo; ui < hi; ui++ {
			u := graph.Node(ui)
			adj, wts := s.csr.Row(u)
			touched = touched[:0]
			for i, v := range adj {
				q := s.parts[v]
				if conn[q] == 0 {
					touched = append(touched, q)
				}
				conn[q] += wts[i]
			}
			from := s.parts[u]
			p := s.pick(s.csr.NodeW[u], from, conn, touched)
			newParts[u] = p
			if p != from {
				moved[w]++
			}
			for _, q := range touched {
				conn[q] = 0
			}
		}
		cws.Int64s.Put(conn)
		cws.Ints.Put(touched)
	})
	total := 0
	for _, m := range moved {
		total += m
	}
	return total
}

// zeroed64 draws a zero-filled int64 slice of length n from p.
func zeroed64(p *arena.Pool[int64], n int) []int64 {
	s := p.Cap(n)[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
