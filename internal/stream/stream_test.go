package stream

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"ppnpart/internal/gen"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// testGraph is a deterministic random connected instance.
func testGraph(t testing.TB, n, m int, seed int64) *graph.Graph {
	t.Helper()
	g, err := gen.RandomConnected(n, m,
		gen.WeightRange{Lo: 1, Hi: 9}, gen.WeightRange{Lo: 1, Hi: 5},
		rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	return g
}

// looseConstraints returns bounds a reasonable k-way partition can meet.
func looseConstraints(g *graph.Graph, k int) metrics.Constraints {
	return metrics.Constraints{
		Rmax: g.TotalNodeWeight()*115/int64(100*k) + g.MaxNodeWeight(),
		Bmax: 2 * g.TotalEdgeWeight() / int64(k),
	}
}

func TestPartitionBasic(t *testing.T) {
	g := testGraph(t, 400, 1600, 7)
	k := 4
	res, err := Partition(g, Options{K: k, Constraints: looseConstraints(g, k)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Parts) != g.NumNodes() {
		t.Fatalf("got %d assignments for %d nodes", len(res.Parts), g.NumNodes())
	}
	if err := metrics.Validate(g, res.Parts, k); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if len(res.Iters) == 0 || res.Iters[0].Iter != 0 {
		t.Fatalf("missing initial-stream trace: %+v", res.Iters)
	}
	if res.Cut != metrics.EdgeCut(g, res.Parts) {
		t.Fatalf("maintained cut %d != recomputed %d", res.Cut, metrics.EdgeCut(g, res.Parts))
	}
}

func TestRestreamingImproves(t *testing.T) {
	g := testGraph(t, 600, 2400, 11)
	k := 4
	c := looseConstraints(g, k)
	one, err := Partition(g, Options{K: k, Constraints: c, MaxIterations: -1})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Partition(g, Options{K: k, Constraints: c, MaxIterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	if many.Goodness > one.Goodness {
		t.Fatalf("restreaming worsened goodness: %v -> %v", one.Goodness, many.Goodness)
	}
	if many.Iterations > 0 && many.Goodness == one.Goodness {
		t.Fatalf("accepted %d restream passes without improving the score", many.Iterations)
	}
}

// TestDeterministicAcrossWorkers pins the tentpole's determinism claim:
// a restream pass is a pure function of the previous assignment, so the
// worker count cannot perturb the result.
func TestDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 500, 2000, 13)
	k := 5
	c := looseConstraints(g, k)
	var want *Result
	for _, workers := range []int{1, 2, 3, 4, 7, 8, 13, 16} {
		res, err := Partition(g, Options{
			K: k, Constraints: c, Workers: workers, Seed: 3, Order: OrderShuffle,
		})
		if err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = res
			continue
		}
		if !reflect.DeepEqual(res.Parts, want.Parts) {
			t.Fatalf("workers=%d changed the assignment", workers)
		}
		if !reflect.DeepEqual(res.Iters, want.Iters) {
			t.Fatalf("workers=%d changed the pass trajectory:\n%+v\nvs\n%+v", workers, res.Iters, want.Iters)
		}
	}
}

func TestOrderShuffleSeeded(t *testing.T) {
	g := testGraph(t, 300, 900, 17)
	k := 3
	c := looseConstraints(g, k)
	a1, err := Partition(g, Options{K: k, Constraints: c, Seed: 5, Order: OrderShuffle})
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Partition(g, Options{K: k, Constraints: c, Seed: 5, Order: OrderShuffle})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a1.Parts, a2.Parts) {
		t.Fatal("same seed produced different assignments")
	}
}

func TestContextCancelled(t *testing.T) {
	g := testGraph(t, 200, 600, 19)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := PartitionCtx(ctx, g, Options{K: 4, Constraints: looseConstraints(g, 4)})
	if err != nil {
		t.Fatalf("cancellation must not error: %v", err)
	}
	if !res.Stopped {
		t.Fatal("Stopped not set under a cancelled context")
	}
	if err := metrics.Validate(g, res.Parts, 4); err != nil {
		t.Fatalf("cancelled run returned an invalid partition: %v", err)
	}
}

func TestOptionsValidate(t *testing.T) {
	g := testGraph(t, 20, 40, 23)
	cases := []Options{
		{K: 0},
		{K: 2, Constraints: metrics.Constraints{Bmax: -1}},
		{K: 2, Constraints: metrics.Constraints{Rmax: -1}},
		{K: 2, Gamma: 0.5},
		{K: 2, Order: Order(99)},
	}
	for _, opts := range cases {
		if _, err := Partition(g, opts); err == nil {
			t.Errorf("Partition(%+v) accepted invalid options", opts)
		}
	}
}

func TestIngestMatchesMetrics(t *testing.T) {
	g := testGraph(t, 250, 1000, 29)
	k := 4
	csr := g.ToCSR()
	in, err := NewIngest(Options{K: k, Constraints: looseConstraints(g, k)})
	if err != nil {
		t.Fatal(err)
	}
	var badj []graph.Node
	var bwts []int64
	for u := 0; u < csr.NumNodes(); u++ {
		adj, wts := csr.Row(graph.Node(u))
		badj, bwts = badj[:0], bwts[:0]
		for i, v := range adj {
			if int(v) < u {
				badj = append(badj, v)
				bwts = append(bwts, wts[i])
			}
		}
		if _, err := in.Push(csr.NodeW[u], badj, bwts); err != nil {
			t.Fatal(err)
		}
	}
	parts := in.Parts()
	if err := metrics.Validate(g, parts, k); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if got, want := in.Cut(), metrics.EdgeCut(g, parts); got != want {
		t.Fatalf("maintained cut %d != recomputed %d", got, want)
	}
	resources := metrics.PartResources(g, parts, k)
	bw := metrics.BandwidthMatrix(g, parts, k)
	for p := 0; p < k; p++ {
		if in.Resource(p) != resources[p] {
			t.Fatalf("part %d resource %d != recomputed %d", p, in.Resource(p), resources[p])
		}
		for q := 0; q < k; q++ {
			if in.Bandwidth(p, q) != bw[p][q] {
				t.Fatalf("bw[%d][%d] = %d != recomputed %d", p, q, in.Bandwidth(p, q), bw[p][q])
			}
		}
	}
}

func TestIngestRejectsBadInput(t *testing.T) {
	in, err := NewIngest(Options{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := in.Push(-1, nil, nil); err == nil {
		t.Error("negative node weight accepted")
	}
	if _, err := in.Push(1, []graph.Node{0}, []int64{1}); err == nil {
		t.Error("forward edge accepted (vertex 0 has no predecessors)")
	}
	if _, err := in.Push(1, []graph.Node{0}, nil); err == nil {
		t.Error("adj/wts length mismatch accepted")
	}
	if _, err := in.Push(1, nil, nil); err != nil {
		t.Fatalf("valid push rejected: %v", err)
	}
	if _, err := in.Push(1, []graph.Node{0}, []int64{-3}); err == nil {
		t.Error("negative edge weight accepted")
	}
}

func TestPartitionSharded(t *testing.T) {
	g := testGraph(t, 700, 2800, 31)
	k := 4
	c := looseConstraints(g, k)
	res, err := PartitionSharded(context.Background(), g, Options{K: k, Constraints: c}, 128)
	if err != nil {
		t.Fatal(err)
	}
	if res.Shards != (700+127)/128 {
		t.Fatalf("Shards = %d, want %d", res.Shards, (700+127)/128)
	}
	if err := metrics.Validate(g, res.Parts, k); err != nil {
		t.Fatalf("invalid partition: %v", err)
	}
	if res.Cut != metrics.EdgeCut(g, res.Parts) {
		t.Fatalf("maintained cut %d != recomputed %d", res.Cut, metrics.EdgeCut(g, res.Parts))
	}
	// The stitched-and-restreamed result should not be worse than a plain
	// single-stream run left unrefined.
	if res.Goodness != metrics.Goodness(g, res.Parts, k, c) {
		t.Fatalf("goodness %v != recomputed %v", res.Goodness, metrics.Goodness(g, res.Parts, k, c))
	}
	if _, err := PartitionSharded(context.Background(), g, Options{K: k}, 0); err == nil {
		t.Fatal("shardNodes = 0 accepted")
	}
}
