package stream

import (
	"testing"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// FuzzStreamAssign drives the streaming partitioner with a fuzz-chosen
// graph and penalty parameters and holds it to the full invariant
// contract (checkInvariants): no panic, every vertex assigned exactly
// once, maintained cut/goodness bit-identical to a from-scratch
// recompute, monotone accepted trajectory — and the same assignment for
// 1 and 4 workers, the determinism half of the tentpole's claim.
func FuzzStreamAssign(f *testing.F) {
	f.Add([]byte{20, 3, 5, 120, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12})
	f.Add([]byte{7, 1, 0, 0})
	f.Add([]byte{40, 5, 9, 255, 250, 240, 3, 0, 0, 1, 17, 33})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 {
			return
		}
		n := int(data[0]%60) + 2
		k := int(data[1]%6) + 1
		// Constraints from one byte: 0 disables, else small bounds the
		// fuzz graphs routinely violate, exercising the penalty terms and
		// the least-loaded fallback.
		var c metrics.Constraints
		if data[2]%3 != 0 {
			c.Bmax = int64(data[2]%40) + 1
		}
		if data[2]%2 != 0 {
			c.Rmax = int64(data[2])%120 + 10
		}
		opts := Options{
			K:             k,
			Constraints:   c,
			Gamma:         1 + float64(data[3]%200)/100,
			MaxIterations: int(data[3]%7) - 1,
			Seed:          int64(data[3]) + 1,
			Order:         Order(data[3] % 2),
			Workers:       1,
		}
		data = data[4:]

		g := graph.New(n)
		// Ring backbone keeps the graph connected, then fuzz-chosen chords.
		for i := 1; i < n; i++ {
			g.MustAddEdge(graph.Node(i-1), graph.Node(i), int64(i%7)+1)
		}
		for i := 0; i+2 < len(data) && i < 4*n; i += 3 {
			u := int(data[i]) % n
			v := int(data[i+1]) % n
			if u != v {
				g.MustAddEdge(graph.Node(u), graph.Node(v), int64(data[i+2]%9)+1)
			}
		}

		res, err := Partition(g, opts)
		if err != nil {
			t.Fatalf("Partition rejected valid input %+v: %v", opts, err)
		}
		checkInvariants(t, g, res, c)

		opts.Workers = 4
		res4, err := Partition(g, opts)
		if err != nil {
			t.Fatal(err)
		}
		for u := range res.Parts {
			if res.Parts[u] != res4.Parts[u] {
				t.Fatalf("worker count changed vertex %d: %d vs %d", u, res.Parts[u], res4.Parts[u])
			}
		}
	})
}
