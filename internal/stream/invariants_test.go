package stream

import (
	"math/rand"
	"testing"

	"ppnpart/internal/gen"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// checkInvariants asserts the streaming partitioner's contract on one
// finished run — the four properties the ISSUE pins:
//
//  1. every vertex is assigned exactly once, to a part in [0, K);
//  2. when the run reports feasibility, every recomputed per-part
//     resource total respects Rmax (and every pairwise bandwidth Bmax);
//  3. the maintained cut/goodness/feasibility are bit-identical to a
//     from-scratch recompute by the metrics package;
//  4. the accepted score trajectory is monotonically non-worsening, and
//     only the final pass may be rejected.
func checkInvariants(t *testing.T, g *graph.Graph, res *Result, c metrics.Constraints) {
	t.Helper()
	k := res.K

	// (1) total assignment.
	if len(res.Parts) != g.NumNodes() {
		t.Fatalf("%d assignments for %d vertices", len(res.Parts), g.NumNodes())
	}
	for u, p := range res.Parts {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d assigned to part %d outside [0,%d)", u, p, k)
		}
	}

	// (2) feasibility means the recomputed totals meet the bounds.
	resources := metrics.PartResources(g, res.Parts, k)
	bw := metrics.BandwidthMatrix(g, res.Parts, k)
	if res.Feasible {
		for p, r := range resources {
			if c.Rmax > 0 && r > c.Rmax {
				t.Fatalf("feasible run has part %d at resource %d > Rmax %d", p, r, c.Rmax)
			}
		}
		for i := range bw {
			for j, b := range bw[i] {
				if i != j && c.Bmax > 0 && b > c.Bmax {
					t.Fatalf("feasible run has bw[%d][%d] = %d > Bmax %d", i, j, b, c.Bmax)
				}
			}
		}
	}

	// (3) maintained values == from-scratch recompute, bit-identical.
	if cut := metrics.EdgeCut(g, res.Parts); res.Cut != cut {
		t.Fatalf("maintained cut %d != recomputed %d", res.Cut, cut)
	}
	if good := metrics.Goodness(g, res.Parts, k, c); res.Goodness != good {
		t.Fatalf("maintained goodness %v != recomputed %v", res.Goodness, good)
	}
	if feas := metrics.Feasible(g, res.Parts, k, c); res.Feasible != feas {
		t.Fatalf("maintained feasible %v != recomputed %v", res.Feasible, feas)
	}

	// (4) monotone accepted trajectory.
	if len(res.Iters) == 0 {
		t.Fatal("no pass trajectory recorded")
	}
	last := res.Iters[0].Score
	for i, it := range res.Iters {
		if i == 0 {
			if !it.Accepted {
				t.Fatal("initial stream marked rejected")
			}
			continue
		}
		if !it.Accepted {
			if i != len(res.Iters)-1 {
				t.Fatalf("pass %d rejected but passes follow it: %+v", it.Iter, res.Iters)
			}
			if it.Score < last {
				t.Fatalf("pass %d improved the score %v -> %v yet was rejected", it.Iter, last, it.Score)
			}
			continue
		}
		if it.Score >= last {
			t.Fatalf("accepted pass %d did not strictly improve: %v -> %v", it.Iter, last, it.Score)
		}
		last = it.Score
	}
	if res.Goodness != last {
		t.Fatalf("final goodness %v != last accepted score %v", res.Goodness, last)
	}
}

// streamCase is one randomized configuration of the property suite.
type streamCase struct {
	g    *graph.Graph
	opts Options
}

// randomCase draws a graph and streaming options from rng. Constraints
// range from unconstrained through satisfiable to impossible, so the
// invariants are exercised on feasible and infeasible outcomes alike.
func randomCase(t *testing.T, rng *rand.Rand) streamCase {
	t.Helper()
	n := 20 + rng.Intn(300)
	maxExtra := n * (n - 1) / 2
	m := n - 1 + rng.Intn(min(3*n, maxExtra-(n-1))+1)
	g, err := gen.RandomConnected(n, m,
		gen.WeightRange{Lo: 1, Hi: 1 + int64(rng.Intn(10))},
		gen.WeightRange{Lo: 1, Hi: 1 + int64(rng.Intn(8))},
		rng)
	if err != nil {
		t.Fatalf("gen: %v", err)
	}
	k := 2 + rng.Intn(6)
	var c metrics.Constraints
	switch rng.Intn(3) {
	case 0: // unconstrained
	case 1: // satisfiable-ish
		c = metrics.Constraints{
			Rmax: g.TotalNodeWeight()*(110+int64(rng.Intn(40)))/int64(100*k) + g.MaxNodeWeight(),
			Bmax: 2 * g.TotalEdgeWeight() / int64(k),
		}
	case 2: // tight, likely infeasible
		c = metrics.Constraints{
			Rmax: g.TotalNodeWeight() / int64(k),
			Bmax: 1 + g.TotalEdgeWeight()/int64(8*k),
		}
	}
	opts := Options{
		K:             k,
		Constraints:   c,
		Gamma:         1 + rng.Float64(),
		MaxIterations: rng.Intn(6) - 1,
		Workers:       1 + rng.Intn(4),
		Seed:          rng.Int63(),
		Order:         Order(rng.Intn(2)),
	}
	return streamCase{g: g, opts: opts}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// TestStreamInvariants is the property suite: many random (graph,
// options) draws, each checked against the full invariant contract.
func TestStreamInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	cases := 60
	if testing.Short() {
		cases = 15
	}
	for i := 0; i < cases; i++ {
		cse := randomCase(t, rng)
		res, err := Partition(cse.g, cse.opts)
		if err != nil {
			t.Fatalf("case %d (%+v): %v", i, cse.opts, err)
		}
		checkInvariants(t, cse.g, res, cse.opts.Constraints)
	}
}

// TestShardedInvariants runs the same contract through the sharded-ingest
// entry point, whose stitch pass and prior-fed restream must preserve it.
func TestShardedInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	cases := 25
	if testing.Short() {
		cases = 8
	}
	for i := 0; i < cases; i++ {
		cse := randomCase(t, rng)
		shard := 1 + rng.Intn(cse.g.NumNodes())
		res, err := PartitionSharded(t.Context(), cse.g, cse.opts, shard)
		if err != nil {
			t.Fatalf("case %d (%+v, shard %d): %v", i, cse.opts, shard, err)
		}
		checkInvariants(t, cse.g, res, cse.opts.Constraints)
	}
}

// TestIngestInvariants pins the online form: after every Push the
// maintained cut, resources and bandwidth match a from-scratch recompute
// of the ingested prefix (checked at a few prefix sizes to stay cheap).
func TestIngestInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	for i := 0; i < 10; i++ {
		cse := randomCase(t, rng)
		csr := cse.g.ToCSR()
		in, err := NewIngest(cse.opts)
		if err != nil {
			t.Fatal(err)
		}
		n := csr.NumNodes()
		checkAt := map[int]bool{n / 3: true, 2 * n / 3: true, n: true}
		var badj []graph.Node
		var bwts []int64
		for u := 0; u < n; u++ {
			adj, wts := csr.Row(graph.Node(u))
			badj, bwts = badj[:0], bwts[:0]
			for j, v := range adj {
				if int(v) < u {
					badj = append(badj, v)
					bwts = append(bwts, wts[j])
				}
			}
			p, err := in.Push(csr.NodeW[u], badj, bwts)
			if err != nil {
				t.Fatal(err)
			}
			if p < 0 || p >= cse.opts.K {
				t.Fatalf("vertex %d pushed to part %d outside [0,%d)", u, p, cse.opts.K)
			}
			if !checkAt[in.Len()] {
				continue
			}
			prefix := make([]graph.Node, in.Len())
			for x := range prefix {
				prefix[x] = graph.Node(x)
			}
			sub, _ := cse.g.InducedSubgraph(prefix)
			parts := in.Parts()[:in.Len()]
			if got, want := in.Cut(), metrics.EdgeCut(sub, parts); got != want {
				t.Fatalf("prefix %d: maintained cut %d != recomputed %d", in.Len(), got, want)
			}
			resources := metrics.PartResources(sub, parts, cse.opts.K)
			bw := metrics.BandwidthMatrix(sub, parts, cse.opts.K)
			for p := 0; p < cse.opts.K; p++ {
				if in.Resource(p) != resources[p] {
					t.Fatalf("prefix %d: part %d resource %d != recomputed %d", in.Len(), p, in.Resource(p), resources[p])
				}
				for q := 0; q < cse.opts.K; q++ {
					if in.Bandwidth(p, q) != bw[p][q] {
						t.Fatalf("prefix %d: bw[%d][%d] = %d != %d", in.Len(), p, q, in.Bandwidth(p, q), bw[p][q])
					}
				}
			}
		}
	}
}
