package stream

import (
	"context"
	"fmt"

	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/refine"
)

// Ingest is the online form of the streaming partitioner: vertices arrive
// one at a time with their backward edges (edges into already-ingested
// vertices, the natural shape of a PPN compiler emitting processes in
// topological order), and each Push answers the vertex's part before the
// next vertex is seen. Resident state is O(K² + n): the assignment so
// far, per-part resource totals and the pairwise bandwidth matrix — the
// graph itself is never materialized, which is what lets a caller stream
// shards of a graph too large for one workspace through a single Ingest.
type Ingest struct {
	chooser
	opts Options
	// adaptive is set when Alpha was derived: the coefficient then tracks
	// the running totals, so early vertices of an unknown-size stream are
	// not over-penalized against final-size loads.
	adaptive bool
	parts    []int
	cut      int64
	nodeWT   int64
	edgeWT   int64

	conn    []int64
	touched []int
}

// NewIngest starts an empty ingest stream.
func NewIngest(opts Options) (*Ingest, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	in := &Ingest{
		chooser: chooser{
			k:     opts.K,
			cons:  opts.Constraints,
			gamma: opts.Gamma,
			alpha: opts.Alpha,
		},
		opts:     opts,
		adaptive: opts.Alpha <= 0,
	}
	in.res = make([]int64, opts.K)
	in.bw = make([]int64, opts.K*opts.K)
	in.conn = make([]int64, opts.K)
	in.touched = make([]int, 0, opts.K)
	return in, nil
}

// Push ingests the next vertex (id = Len() before the call) with node
// weight w and backward edges adj/wts, and returns its assigned part.
// Every adj entry must reference an already-ingested vertex.
func (in *Ingest) Push(w int64, adj []graph.Node, wts []int64) (int, error) {
	if w < 0 {
		return 0, fmt.Errorf("stream: negative node weight %d", w)
	}
	if len(adj) != len(wts) {
		return 0, fmt.Errorf("stream: %d edges with %d weights", len(adj), len(wts))
	}
	u := len(in.parts)
	in.touched = in.touched[:0]
	var edgeW int64
	for i, v := range adj {
		if int(v) >= u || v < 0 {
			return 0, fmt.Errorf("stream: edge to %d is not a backward edge (vertex %d)", v, u)
		}
		if wts[i] < 0 {
			return 0, fmt.Errorf("stream: negative edge weight %d", wts[i])
		}
		q := in.parts[v]
		if in.conn[q] == 0 {
			in.touched = append(in.touched, q)
		}
		in.conn[q] += wts[i]
		edgeW += wts[i]
	}
	in.nodeWT += w
	in.edgeWT += edgeW
	if in.adaptive {
		in.alpha = deriveAlpha(in.k, in.edgeWT, in.nodeWT, in.gamma)
	}
	// The dominant bandwidth penalty tracks the running edge weight the
	// same way pstate derives it from the full graph's total.
	in.bwBase = float64(in.edgeWT + 1)

	p := in.pick(w, -1, in.conn, in.touched)
	in.parts = append(in.parts, p)
	in.res[p] += w
	for _, q := range in.touched {
		if q == p {
			continue
		}
		in.cut += in.conn[q]
		in.bw[p*in.k+q] += in.conn[q]
		in.bw[q*in.k+p] += in.conn[q]
	}
	for _, q := range in.touched {
		in.conn[q] = 0
	}
	return p, nil
}

// Len is the number of ingested vertices.
func (in *Ingest) Len() int { return len(in.parts) }

// Parts exposes the assignment so far; the slice is owned by the Ingest.
func (in *Ingest) Parts() []int { return in.parts }

// Cut is the maintained global edge cut of the ingested prefix.
func (in *Ingest) Cut() int64 { return in.cut }

// Resource is the maintained resource total of part p.
func (in *Ingest) Resource(p int) int64 { return in.res[p] }

// Bandwidth is the maintained traffic between parts i and j.
func (in *Ingest) Bandwidth(i, j int) int64 { return in.bw[i*in.k+j] }

// PartitionSharded streams g through an Ingest in contiguous vertex
// shards of shardNodes (each shard contributing only its backward edges,
// as a too-large-for-one-workspace producer would), then stitches the
// shard boundaries: one deterministic refine.BatchKWayWS pass over the
// full CSR repairs the cross-shard cuts the per-shard stream could not
// see, and the regular restream loop (with the stitched assignment as
// prior) converges the result. Result.Shards and Result.StitchMoves
// record the protocol's work.
func PartitionSharded(ctx context.Context, g *graph.Graph, opts Options, shardNodes int) (*Result, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	if shardNodes <= 0 {
		return nil, fmt.Errorf("stream: shardNodes = %d must be positive", shardNodes)
	}
	opts = opts.withDefaults()
	csr := g.ToCSR()
	n := csr.NumNodes()
	// A known graph pins the penalty coefficient up front so the sharded
	// run and the batch streamer price imbalance identically.
	if opts.Alpha <= 0 {
		opts.Alpha = deriveAlpha(opts.K, csr.EdgeWT, csr.NodeWT, opts.Gamma)
	}
	in, err := NewIngest(opts)
	if err != nil {
		return nil, err
	}
	shards := 0
	var badj []graph.Node
	var bwts []int64
	for base := 0; base < n || (n == 0 && shards == 0); base += shardNodes {
		hi := base + shardNodes
		if hi > n {
			hi = n
		}
		for ui := base; ui < hi; ui++ {
			u := graph.Node(ui)
			adj, wts := csr.Row(u)
			badj, bwts = badj[:0], bwts[:0]
			for i, v := range adj {
				if v < u {
					badj = append(badj, v)
					bwts = append(bwts, wts[i])
				}
			}
			if _, err := in.Push(csr.NodeW[u], badj, bwts); err != nil {
				return nil, err
			}
		}
		shards++
	}

	ws := arena.Get()
	defer arena.Put(ws)
	parts := append([]int(nil), in.Parts()...)
	st := refine.BatchKWayWS(ws, csr, parts, refine.BatchOptions{
		K:           opts.K,
		Constraints: opts.Constraints,
		Workers:     opts.Workers,
		Pool:        opts.Pool,
	})
	res, err := run(ctx, ws, csr, opts, parts)
	if err != nil {
		return nil, err
	}
	res.Parts = append([]int(nil), res.Parts...)
	res.Shards = shards
	res.StitchMoves = st.Moves
	return res, nil
}
