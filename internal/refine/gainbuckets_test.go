package refine

import (
	"math/rand"
	"sort"
	"testing"
)

// bucketScanOrder collects the scan's emission order.
func bucketScanOrder(gb *gainBuckets) []int {
	var got []int
	gb.scan(func(u int) { got = append(got, u) })
	return got
}

// sortRankingOrder is the ranking the batch pass used before gainBuckets:
// every live candidate, sort.Slice'd by (gain desc, node asc).
func sortRankingOrder(gains map[int]int64) []int {
	order := make([]int, 0, len(gains))
	for u := range gains {
		order = append(order, u)
	}
	sort.Slice(order, func(i, j int) bool {
		if gains[order[i]] != gains[order[j]] {
			return gains[order[i]] > gains[order[j]]
		}
		return order[i] < order[j]
	})
	return order
}

func checkOrder(t *testing.T, gb *gainBuckets, model map[int]int64, step string) {
	t.Helper()
	if gb.count != len(model) {
		t.Fatalf("%s: count = %d, want %d", step, gb.count, len(model))
	}
	got := bucketScanOrder(gb)
	want := sortRankingOrder(model)
	if len(got) != len(want) {
		t.Fatalf("%s: scan emitted %d candidates, want %d", step, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: position %d: bucket scan chose node %d, sort ranking chose node %d\n got: %v\nwant: %v",
				step, i, got[i], want[i], got, want)
		}
	}
}

// The bucket scan must select the exact same candidate sequence as the
// sort.Slice ranking it replaced — including gain ties, which must break
// toward the lower node id — across randomized insert/update/remove
// churn (the dirty-set re-bucketing between batch rounds).
func TestGainBucketsMatchesSortRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 400
	gb := &gainBuckets{}
	for trial := 0; trial < 20; trial++ {
		gb.reset(n)
		model := make(map[int]int64)
		// Initial population with a tie-heavy gain distribution: small
		// gain domains force many nodes into the same value and bucket.
		for u := 0; u < n; u++ {
			if rng.Intn(3) == 0 {
				continue
			}
			var g int64
			switch rng.Intn(3) {
			case 0:
				g = 1 + rng.Int63n(8) // dense ties in low buckets
			case 1:
				g = 1 + rng.Int63n(1000)
			default:
				g = 1 + rng.Int63n(1<<40) // huge bandwidth-scale gains
			}
			gb.set(u, g)
			model[u] = g
		}
		checkOrder(t, gb, model, "initial")
		// Churn rounds: re-bucket a random dirty subset like the batch
		// pass does between rounds.
		for round := 0; round < 5; round++ {
			for i := 0; i < n/4; i++ {
				u := rng.Intn(n)
				switch rng.Intn(4) {
				case 0:
					gb.remove(u)
					delete(model, u)
				default:
					g := 1 + rng.Int63n(1<<uint(1+rng.Intn(40)))
					gb.set(u, g)
					model[u] = g
				}
			}
			checkOrder(t, gb, model, "churn")
		}
	}
}

// Same-gain re-set must be a no-op (no spurious dirty churn) and still
// scan correctly.
func TestGainBucketsIdempotentSet(t *testing.T) {
	gb := &gainBuckets{}
	gb.reset(10)
	model := map[int]int64{3: 7, 5: 7, 1: 7, 9: 200}
	for u, g := range model {
		gb.set(u, g)
	}
	checkOrder(t, gb, model, "populate")
	for u, g := range model {
		gb.set(u, g) // identical re-insert
	}
	checkOrder(t, gb, model, "re-set")
	gb.remove(42 % 10) // absent node: no-op
	checkOrder(t, gb, model, "remove-absent")
}

// FuzzGainBuckets drives randomized op sequences against the sort.Slice
// reference model (wired into make fuzz-smoke and CI).
func FuzzGainBuckets(f *testing.F) {
	f.Add([]byte{0x01, 0x02, 0x03})
	f.Add([]byte{0xff, 0x00, 0x80, 0x41, 0x41, 0x41, 0x41, 0x41})
	f.Add([]byte{0x10, 0x20, 0x30, 0x40, 0x50, 0x60, 0x70, 0x80, 0x90})
	f.Fuzz(func(t *testing.T, data []byte) {
		const n = 64
		gb := &gainBuckets{}
		gb.reset(n)
		model := make(map[int]int64)
		for i := 0; i+1 < len(data); i += 2 {
			u := int(data[i]) % n
			v := data[i+1]
			if v == 0 {
				gb.remove(u)
				delete(model, u)
				continue
			}
			// Spread ops across bucket magnitudes: the low bits pick the
			// value, the high bits shift it into higher buckets.
			g := int64(v&0x0f) + 1<<uint(v>>4)
			gb.set(u, g)
			model[u] = g
		}
		if gb.count != len(model) {
			t.Fatalf("count = %d, want %d", gb.count, len(model))
		}
		got := bucketScanOrder(gb)
		want := sortRankingOrder(model)
		if len(got) != len(want) {
			t.Fatalf("scan emitted %d, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("position %d: got node %d, want node %d", i, got[i], want[i])
			}
		}
	})
}
