package refine

import (
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// KernighanLin runs the classic KL pair-swap heuristic on a bisection
// (parts[u] ∈ {0,1}), mutating parts in place. Each pass tentatively swaps
// the best remaining (a ∈ side0, b ∈ side1) pair until both sides are
// exhausted, then keeps the best prefix of swaps. Swapping preserves side
// node counts exactly, matching KL's original exact-bisection restriction
// (§II-A.1 of the paper lists this as one of KL's drawbacks). maxPasses
// <= 0 defaults to 4. KL is O(n^2·passes); it exists as the historical
// baseline and for cross-checking FM on small graphs.
func KernighanLin(g *graph.Graph, parts []int, maxPasses int) Stats {
	if maxPasses <= 0 {
		maxPasses = 4
	}
	st := Stats{CutBefore: metrics.EdgeCut(g, parts)}
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		gain, swaps := klPass(g, parts)
		st.Moves += 2 * swaps
		if gain <= 0 {
			break
		}
	}
	st.CutAfter = metrics.EdgeCut(g, parts)
	return st
}

// klPass performs one KL pass and returns (total gain kept, swaps kept).
func klPass(g *graph.Graph, parts []int) (int64, int) {
	n := g.NumNodes()
	// D[u] = external - internal connectivity.
	d := make([]int64, n)
	for u := 0; u < n; u++ {
		for _, h := range g.Neighbors(graph.Node(u)) {
			if parts[h.To] == parts[u] {
				d[u] -= h.Weight
			} else {
				d[u] += h.Weight
			}
		}
	}
	locked := make([]bool, n)
	type swap struct {
		a, b graph.Node
		gain int64
	}
	var seq []swap
	for {
		// Find best unlocked pair (a in 0, b in 1).
		var bestA, bestB graph.Node = -1, -1
		var bestGain int64
		first := true
		for a := 0; a < n; a++ {
			if locked[a] || parts[a] != 0 {
				continue
			}
			for b := 0; b < n; b++ {
				if locked[b] || parts[b] != 1 {
					continue
				}
				gain := d[a] + d[b] - 2*g.EdgeWeight(graph.Node(a), graph.Node(b))
				if first || gain > bestGain {
					bestA, bestB, bestGain = graph.Node(a), graph.Node(b), gain
					first = false
				}
			}
		}
		if bestA < 0 {
			break
		}
		// Tentatively swap (record only; D-values updated as if swapped).
		locked[bestA], locked[bestB] = true, true
		seq = append(seq, swap{bestA, bestB, bestGain})
		for u := 0; u < n; u++ {
			if locked[u] {
				continue
			}
			un := graph.Node(u)
			wA := g.EdgeWeight(un, bestA)
			wB := g.EdgeWeight(un, bestB)
			if parts[u] == 0 {
				d[u] += 2*wA - 2*wB
			} else {
				d[u] += 2*wB - 2*wA
			}
		}
	}
	// Keep the best prefix.
	var acc, best int64
	bestLen := 0
	for i, s := range seq {
		acc += s.gain
		if acc > best {
			best = acc
			bestLen = i + 1
		}
	}
	for i := 0; i < bestLen; i++ {
		parts[seq[i].a] = 1
		parts[seq[i].b] = 0
	}
	if best <= 0 {
		return 0, 0
	}
	return best, bestLen
}
