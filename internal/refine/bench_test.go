package refine

import (
	"math/rand"
	"testing"

	"ppnpart/internal/metrics"
)

func BenchmarkFMBisect(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 5000)
	base := make([]int, 5000)
	for i := range base {
		base[i] = i % 2
	}
	bound := g.TotalNodeWeight()/2 + g.MaxNodeWeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		FMBisect(g, parts, bound, 4)
	}
}

func BenchmarkKWayFM(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 5000)
	base := make([]int, 5000)
	for i := range base {
		base[i] = i % 8
	}
	bound := g.TotalNodeWeight()/8 + g.MaxNodeWeight()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		KWayFM(g, parts, 8, bound, 4)
	}
}

func BenchmarkRepairBandwidth(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 2000)
	base := make([]int, 2000)
	for i := range base {
		base[i] = rng.Intn(4)
	}
	c := metrics.Constraints{Bmax: g.TotalEdgeWeight() / 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		RepairBandwidth(g, parts, 4, c, 4)
	}
}

func BenchmarkTabuSearch(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(rng, 500)
	base := make([]int, 500)
	for i := range base {
		base[i] = rng.Intn(4)
	}
	c := metrics.Constraints{Bmax: g.TotalEdgeWeight() / 4, Rmax: g.TotalNodeWeight()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		TabuSearch(g, parts, 4, c, TabuOptions{Iterations: 200})
	}
}

func BenchmarkAnneal(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := randomConnected(rng, 2000)
	base := make([]int, 2000)
	for i := range base {
		base[i] = rng.Intn(4)
	}
	c := metrics.Constraints{Bmax: g.TotalEdgeWeight() / 4, Rmax: g.TotalNodeWeight()}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		Anneal(g, parts, 4, c, AnnealOptions{Iterations: 5000}, rand.New(rand.NewSource(9)))
	}
}

func BenchmarkKernighanLin(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	g := randomConnected(rng, 300) // KL is O(n^2) per pass
	base := make([]int, 300)
	for i := range base {
		base[i] = i % 2
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		parts := append([]int(nil), base...)
		KernighanLin(g, parts, 2)
	}
}
