package refine

import (
	"math/rand"
	"reflect"
	"testing"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// randomKWayStart assigns every node a random part but guarantees each of
// the k parts is non-empty (the batch pass, like KWayFM, promises never to
// empty a part — the promise is vacuous on starts that already have one).
func randomKWayStart(rng *rand.Rand, n, k int) []int {
	parts := make([]int, n)
	for i := range parts {
		parts[i] = rng.Intn(k)
	}
	// Pin parts 0..k-1 onto distinct nodes so no part starts empty.
	for p := 0; p < k && p < n; p++ {
		parts[p] = p
	}
	return parts
}

func TestBatchKWayNeverWorsensAndStaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 40+rng.Intn(60))
		n := g.NumNodes()
		k := 2 + rng.Intn(4)
		parts := randomKWayStart(rng, n, k)
		before := metrics.EdgeCut(g, parts)
		st := BatchKWay(g, parts, BatchOptions{K: k})
		after := metrics.EdgeCut(g, parts)
		if after > before {
			t.Fatalf("trial %d: batch pass worsened cut %d -> %d", trial, before, after)
		}
		if st.CutBefore != before || st.CutAfter != after {
			t.Fatalf("trial %d: stats %+v disagree with recomputed %d -> %d", trial, st, before, after)
		}
		if err := metrics.Validate(g, parts, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for p, s := range metrics.PartSizes(parts, k) {
			if s == 0 {
				t.Fatalf("trial %d: batch pass emptied part %d", trial, p)
			}
		}
	}
}

func TestBatchKWayImprovesInterleavedClusters(t *testing.T) {
	g := twoClusters(16)
	parts := make([]int, g.NumNodes())
	for i := range parts {
		parts[i] = i % 2
	}
	before := metrics.EdgeCut(g, parts)
	st := BatchKWay(g, parts, BatchOptions{K: 2, Record: true})
	after := metrics.EdgeCut(g, parts)
	if after >= before {
		t.Fatalf("batch pass did not improve interleaved clusters: %d -> %d", before, after)
	}
	if !st.Improved() {
		t.Fatalf("stats should report improvement: %+v", st)
	}
	if st.Rounds == 0 || st.Moves == 0 {
		t.Fatalf("improving pass recorded no rounds/moves: %+v", st)
	}
	if len(st.RoundSizes) != st.Rounds || len(st.RoundGains) != st.Rounds {
		t.Fatalf("Record bookkeeping mismatch: %+v", st)
	}
	var moves int
	for _, s := range st.RoundSizes {
		moves += s
	}
	if moves != st.Moves {
		t.Fatalf("RoundSizes sum %d != Moves %d", moves, st.Moves)
	}
}

func TestBatchKWayRespectsRmax(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(rng, 50)
		k := 2 + rng.Intn(3)
		parts := randomKWayStart(rng, 50, k)
		var rmax int64
		for _, r := range metrics.PartResources(g, parts, k) {
			if r > rmax {
				rmax = r
			}
		}
		BatchKWay(g, parts, BatchOptions{K: k, Constraints: metrics.Constraints{Rmax: rmax}})
		for p, r := range metrics.PartResources(g, parts, k) {
			if r > rmax {
				t.Fatalf("trial %d: part %d overflowed Rmax: %d > %d", trial, p, r, rmax)
			}
		}
	}
}

// TestBatchKWayDeterministicAcrossWorkers is the core determinism contract:
// the pass must produce bit-identical partitions and statistics for any
// worker count, because every sweep writes into per-node slots and the
// selection is index-ordered.
func TestBatchKWayDeterministicAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 80+rng.Intn(80))
		n := g.NumNodes()
		k := 2 + rng.Intn(5)
		base := randomKWayStart(rng, n, k)
		var rmax int64
		for _, r := range metrics.PartResources(g, base, k) {
			if r > rmax {
				rmax = r
			}
		}
		opts := BatchOptions{K: k, Constraints: metrics.Constraints{Rmax: rmax}, Record: true}

		var refParts []int
		var refStats BatchStats
		for i, workers := range []int{1, 2, 3, 4, 7, 16} {
			parts := append([]int(nil), base...)
			o := opts
			o.Workers = workers
			st := BatchKWay(g, parts, o)
			if i == 0 {
				refParts, refStats = parts, st
				continue
			}
			if !reflect.DeepEqual(parts, refParts) {
				t.Fatalf("trial %d: workers=%d diverged from workers=1 partition", trial, workers)
			}
			if !reflect.DeepEqual(st, refStats) {
				t.Fatalf("trial %d: workers=%d stats %+v != workers=1 stats %+v", trial, workers, st, refStats)
			}
		}
	}
}

// TestBatchKWayDifferentialStateMatchesMetrics bit-compares, after every
// applied round, the incremental pstate quantities against a from-scratch
// recomputation on the state's own assignment — the same contract the
// pstate invariants harness enforces, checked here at the batch-apply
// boundary where the refiner issues many moves between checks.
func TestBatchKWayDifferentialStateMatchesMetrics(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(rng, 60+rng.Intn(60))
		n := g.NumNodes()
		k := 2 + rng.Intn(4)
		parts := randomKWayStart(rng, n, k)
		var cons metrics.Constraints
		if trial%2 == 0 {
			var rmax int64
			for _, r := range metrics.PartResources(g, parts, k) {
				if r > rmax {
					rmax = r
				}
			}
			cons = metrics.Constraints{Bmax: 1 + int64(rng.Intn(200)), Rmax: rmax}
		}
		hooks := 0
		BatchKWay(g, parts, BatchOptions{
			K:           k,
			Constraints: cons,
			RoundHook: func(round int, st *pstate.State) {
				hooks++
				pp := st.Parts()
				if got, want := st.Cut(), metrics.EdgeCut(g, pp); got != want {
					t.Fatalf("trial %d round %d: cut maintained %d, recomputed %d", trial, round, got, want)
				}
				bw := metrics.BandwidthMatrix(g, pp, k)
				for i := 0; i < k; i++ {
					for j := 0; j < k; j++ {
						if got := st.Bandwidth(i, j); got != bw[i][j] {
							t.Fatalf("trial %d round %d: bandwidth[%d][%d] maintained %d, recomputed %d",
								trial, round, i, j, got, bw[i][j])
						}
					}
				}
				res := metrics.PartResources(g, pp, k)
				sizes := metrics.PartSizes(pp, k)
				for p := 0; p < k; p++ {
					if st.Resource(p) != res[p] || st.Count(p) != sizes[p] {
						t.Fatalf("trial %d round %d: part %d maintained (%d,%d), recomputed (%d,%d)",
							trial, round, p, st.Resource(p), st.Count(p), res[p], sizes[p])
					}
				}
				if got, want := st.Feasible(), metrics.Feasible(g, pp, k, cons); got != want {
					t.Fatalf("trial %d round %d: feasible maintained %v, recomputed %v", trial, round, got, want)
				}
			},
		})
		if hooks == 0 && metrics.EdgeCut(g, parts) > 0 {
			// Not an error by itself (the start may already be locally
			// optimal), but with 8 trials at these sizes at least some must
			// exercise the hook or the test is vacuous.
			t.Logf("trial %d: no rounds applied", trial)
		}
	}
}

// TestBatchKWayPreApplyPanicLeavesPartsUntouched pins the failure-isolation
// contract the engine's chaos failpoint relies on: a panic at the pre-apply
// boundary must propagate without having mutated the caller's assignment.
func TestBatchKWayPreApplyPanicLeavesPartsUntouched(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := randomConnected(rng, 60)
	parts := randomKWayStart(rng, 60, 3)
	orig := append([]int(nil), parts...)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected the PreApply panic to propagate")
			}
		}()
		BatchKWay(g, parts, BatchOptions{K: 3, PreApply: func(round, batch int) {
			panic("injected")
		}})
	}()
	if !reflect.DeepEqual(parts, orig) {
		t.Fatal("panic at the apply boundary mutated the caller's assignment")
	}
}

func TestBatchKWayDegenerateInputs(t *testing.T) {
	g := graph.New(1)
	parts := []int{0}
	if st := BatchKWay(g, parts, BatchOptions{K: 1}); st.Rounds != 0 {
		t.Fatalf("k=1 should be a no-op, got %+v", st)
	}
	g2 := twoClusters(4)
	parts2 := make([]int, g2.NumNodes())
	for i := range parts2 {
		parts2[i] = i % 2
	}
	// MaxRounds=1 must stop after one round regardless of remaining gain.
	st := BatchKWay(g2, parts2, BatchOptions{K: 2, MaxRounds: 1})
	if st.Rounds > 1 {
		t.Fatalf("MaxRounds=1 ran %d rounds", st.Rounds)
	}
}

// FuzzBatchSelect feeds fuzz-shaped instances through the batch pass at
// several worker counts and demands identical partitions, plus the basic
// safety properties (no worsened cut, valid assignment, non-empty parts).
func FuzzBatchSelect(f *testing.F) {
	f.Add(int64(1), 20, 3)
	f.Add(int64(7), 64, 4)
	f.Add(int64(42), 9, 2)
	f.Fuzz(func(t *testing.T, seed int64, n, k int) {
		if n < 4 || n > 200 || k < 2 || k > 8 || k > n {
			t.Skip()
		}
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, n)
		base := randomKWayStart(rng, n, k)
		before := metrics.EdgeCut(g, base)
		var rmax int64
		for _, r := range metrics.PartResources(g, base, k) {
			if r > rmax {
				rmax = r
			}
		}
		opts := BatchOptions{K: k, Constraints: metrics.Constraints{Rmax: rmax}}

		var ref []int
		for i, workers := range []int{1, 3, 8} {
			parts := append([]int(nil), base...)
			o := opts
			o.Workers = workers
			BatchKWay(g, parts, o)
			if i == 0 {
				ref = parts
				if metrics.EdgeCut(g, parts) > before {
					t.Fatalf("batch pass worsened cut")
				}
				if err := metrics.Validate(g, parts, k); err != nil {
					t.Fatal(err)
				}
				for p, s := range metrics.PartSizes(parts, k) {
					if s == 0 {
						t.Fatalf("part %d emptied", p)
					}
				}
				for p, r := range metrics.PartResources(g, parts, k) {
					if r > rmax {
						t.Fatalf("part %d overflowed Rmax: %d > %d", p, r, rmax)
					}
				}
				continue
			}
			if !reflect.DeepEqual(parts, ref) {
				t.Fatalf("workers=%d produced a different partition than workers=1", workers)
			}
		}
	})
}
