package refine

import (
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// This file implements the "more costly local search" strategies §II-A of
// the paper contrasts with FM: Tabu Search, which lifts FM's
// move-at-most-once-per-pass restriction ("a node can be moved different
// times during one iteration"), and simulated annealing, the canonical
// non-greedy hill-climber ("will sometimes accept a solution that is
// worse than the existing solution ... to avoid getting trapped in local
// minima"). Both optimize the same constrained objective as GP's
// goodness function: feasibility first, cut second. Both read the graph
// through the shared incremental partition state (internal/pstate), so a
// candidate move costs O(deg + K) rather than a fresh matrix rebuild.

// TabuOptions configures TabuSearch.
type TabuOptions struct {
	// Iterations bounds the number of moves considered (default 100·n).
	Iterations int
	// Tenure is how many iterations a moved node stays tabu (default
	// max(7, n/10)).
	Tenure int
	// Patience stops the search after this many non-improving moves
	// (default 4·Tenure).
	Patience int
}

// penaltyUnit returns the weight that makes one unit of constraint excess
// dominate any possible cut difference.
func penaltyUnit(totalEdgeWeight int64) int64 {
	return totalEdgeWeight + 1
}

// objective scores a state from its cut and total constraint excess:
// lower is better, and any infeasible state scores worse than any
// feasible one (the integer analogue of metrics.Goodness).
func objective(cut, excess, penalty int64) int64 {
	return cut + excess*penalty
}

// TabuSearch refines a k-way partition under the constraints: each
// iteration applies the best non-tabu single-node move (by objective
// delta, even if worsening), marks the node tabu for Tenure iterations
// (aspiration: a tabu move that improves the best-known state is
// allowed), and finally restores the best state seen. Returns Stats on
// the cut plus whether the final state is feasible.
func TabuSearch(g *graph.Graph, parts []int, k int, c metrics.Constraints, opts TabuOptions) (Stats, bool) {
	return TabuSearchCSR(g.ToCSR(), parts, k, c, opts)
}

// TabuSearchCSR is TabuSearch on a prebuilt CSR snapshot.
func TabuSearchCSR(csr *graph.CSR, parts []int, k int, c metrics.Constraints, opts TabuOptions) (Stats, bool) {
	n := csr.NumNodes()
	if opts.Iterations <= 0 {
		opts.Iterations = 100 * n
	}
	if opts.Tenure <= 0 {
		opts.Tenure = n / 10
		if opts.Tenure < 7 {
			opts.Tenure = 7
		}
	}
	if opts.Patience <= 0 {
		opts.Patience = 4 * opts.Tenure
	}
	s, err := pstate.New(csr, parts, pstate.Config{K: k, Constraints: c})
	if err != nil {
		return Stats{}, false
	}
	st := Stats{CutBefore: s.Cut()}
	penalty := penaltyUnit(csr.EdgeWT)
	bwEx, resEx, _ := s.Excess()
	cur := objective(s.Cut(), bwEx+resEx, penalty)
	best := cur
	bestParts := append([]int(nil), parts...)
	tabuUntil := make([]int, n)
	sinceImprove := 0

	for iter := 1; iter <= opts.Iterations && sinceImprove < opts.Patience; iter++ {
		// Best admissible move over all (node, target) pairs.
		var moveU graph.Node = -1
		moveTo := -1
		var moveDeltaObj int64
		for u := 0; u < n; u++ {
			un := graph.Node(u)
			from := s.Part(un)
			if s.Count(from) == 1 {
				continue
			}
			for to := 0; to < k; to++ {
				if to == from {
					continue
				}
				cd, ed, red := s.MoveDelta(un, to)
				dObj := cd + (ed+red)*penalty
				isTabu := tabuUntil[u] > iter
				if isTabu && cur+dObj >= best {
					continue // tabu and not aspirational
				}
				if moveU < 0 || dObj < moveDeltaObj {
					moveU, moveTo, moveDeltaObj = un, to, dObj
				}
			}
		}
		if moveU < 0 {
			break
		}
		s.Move(moveU, moveTo)
		cur += moveDeltaObj
		tabuUntil[moveU] = iter + opts.Tenure
		st.Moves++
		if cur < best {
			best = cur
			copy(bestParts, s.Parts())
			sinceImprove = 0
		} else {
			sinceImprove++
		}
	}
	copy(parts, bestParts)
	st.Passes = 1
	// The best state's cut: rebuild the maintained state at bestParts by
	// undoing past the best point is not tracked; recompute from CSR.
	st.CutAfter = csrEdgeCut(csr, parts)
	return st, csrFeasible(csr, parts, k, c)
}

// csrEdgeCut is metrics.EdgeCut on a CSR snapshot.
func csrEdgeCut(csr *graph.CSR, parts []int) int64 {
	var cut int64
	n := csr.NumNodes()
	for u := 0; u < n; u++ {
		adj, wts := csr.Row(graph.Node(u))
		for i, v := range adj {
			if graph.Node(u) < v && parts[u] != parts[v] {
				cut += wts[i]
			}
		}
	}
	return cut
}

// csrFeasible checks both scalar constraints on a CSR snapshot in one
// adjacency sweep.
func csrFeasible(csr *graph.CSR, parts []int, k int, c metrics.Constraints) bool {
	s, err := pstate.New(csr, parts, pstate.Config{K: k, Constraints: c})
	if err != nil {
		return false
	}
	return s.Feasible()
}
