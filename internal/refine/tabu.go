package refine

import (
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// This file implements the "more costly local search" strategies §II-A of
// the paper contrasts with FM: Tabu Search, which lifts FM's
// move-at-most-once-per-pass restriction ("a node can be moved different
// times during one iteration"), and simulated annealing, the canonical
// non-greedy hill-climber ("will sometimes accept a solution that is
// worse than the existing solution ... to avoid getting trapped in local
// minima"). Both optimize the same constrained objective as GP's
// goodness function: feasibility first, cut second.

// TabuOptions configures TabuSearch.
type TabuOptions struct {
	// Iterations bounds the number of moves considered (default 100·n).
	Iterations int
	// Tenure is how many iterations a moved node stays tabu (default
	// max(7, n/10)).
	Tenure int
	// Patience stops the search after this many non-improving moves
	// (default 4·Tenure).
	Patience int
}

// penaltyUnit returns the weight that makes one unit of constraint excess
// dominate any possible cut difference.
func penaltyUnit(g *graph.Graph) int64 {
	return g.TotalEdgeWeight() + 1
}

// objective scores a state from its cut and total constraint excess:
// lower is better, and any infeasible state scores worse than any
// feasible one (the integer analogue of metrics.Goodness).
func objective(cut, excess, penalty int64) int64 {
	return cut + excess*penalty
}

// TabuSearch refines a k-way partition under the constraints: each
// iteration applies the best non-tabu single-node move (by objective
// delta, even if worsening), marks the node tabu for Tenure iterations
// (aspiration: a tabu move that improves the best-known state is
// allowed), and finally restores the best state seen. Returns Stats on
// the cut plus whether the final state is feasible.
func TabuSearch(g *graph.Graph, parts []int, k int, c metrics.Constraints, opts TabuOptions) (Stats, bool) {
	n := g.NumNodes()
	if opts.Iterations <= 0 {
		opts.Iterations = 100 * n
	}
	if opts.Tenure <= 0 {
		opts.Tenure = n / 10
		if opts.Tenure < 7 {
			opts.Tenure = 7
		}
	}
	if opts.Patience <= 0 {
		opts.Patience = 4 * opts.Tenure
	}
	st := Stats{CutBefore: metrics.EdgeCut(g, parts)}
	s := newBWState(g, parts, k)
	penalty := penaltyUnit(g)
	bmax := c.Bmax
	if bmax <= 0 {
		bmax = 1 << 62 // effectively unconstrained
	}
	cut := st.CutBefore
	excess := s.excess(bmax)
	resExcess := resourceExcess(s.res, c.Rmax)
	cur := objective(cut, excess+resExcess, penalty)
	best := cur
	bestParts := append([]int(nil), parts...)
	tabuUntil := make([]int, n)
	sinceImprove := 0

	for iter := 1; iter <= opts.Iterations && sinceImprove < opts.Patience; iter++ {
		// Best admissible move over all (node, target) pairs.
		var moveU graph.Node = -1
		moveTo := -1
		var moveDeltaObj int64
		for u := 0; u < n; u++ {
			un := graph.Node(u)
			from := s.parts[u]
			if s.cnt[from] == 1 {
				continue
			}
			w := g.NodeWeight(un)
			for to := 0; to < k; to++ {
				if to == from {
					continue
				}
				ed, cd := s.moveDelta(un, to, bmax)
				// Resource excess delta.
				red := resourceMoveDelta(s.res, from, to, w, c.Rmax)
				dObj := cd + (ed+red)*penalty
				isTabu := tabuUntil[u] > iter
				if isTabu && cur+dObj >= best {
					continue // tabu and not aspirational
				}
				if moveU < 0 || dObj < moveDeltaObj {
					moveU, moveTo, moveDeltaObj = un, to, dObj
				}
			}
		}
		if moveU < 0 {
			break
		}
		s.apply(moveU, moveTo)
		cur += moveDeltaObj
		tabuUntil[moveU] = iter + opts.Tenure
		st.Moves++
		if cur < best {
			best = cur
			copy(bestParts, s.parts)
			sinceImprove = 0
		} else {
			sinceImprove++
		}
	}
	copy(parts, bestParts)
	st.Passes = 1
	st.CutAfter = metrics.EdgeCut(g, parts)
	return st, metrics.Feasible(g, parts, k, c)
}

// resourceExcess sums per-part overflow above rmax.
func resourceExcess(res []int64, rmax int64) int64 {
	if rmax <= 0 {
		return 0
	}
	var e int64
	for _, r := range res {
		if r > rmax {
			e += r - rmax
		}
	}
	return e
}

// resourceMoveDelta is the change in total resource excess if a node of
// weight w moves from part `from` to part `to`.
func resourceMoveDelta(res []int64, from, to int, w, rmax int64) int64 {
	if rmax <= 0 {
		return 0
	}
	over := func(v int64) int64 {
		if v > rmax {
			return v - rmax
		}
		return 0
	}
	return over(res[from]-w) - over(res[from]) + over(res[to]+w) - over(res[to])
}
