package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// bwExcessOf computes the summed pairwise-bandwidth excess from scratch,
// the reference the incremental state is checked against.
func bwExcessOf(g *graph.Graph, parts []int, k int, bmax int64) int64 {
	bw := metrics.BandwidthMatrix(g, parts, k)
	var ex int64
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if bw[i][j] > bmax {
				ex += bw[i][j] - bmax
			}
		}
	}
	return ex
}

func TestRepairStateMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randomConnected(rng, 40)
	csr := g.ToCSR()
	k := 4
	parts := make([]int, 40)
	for i := range parts {
		parts[i] = rng.Intn(k)
	}
	s, err := pstate.New(csr, parts, pstate.Config{K: k, Constraints: metrics.Constraints{Bmax: 25}})
	if err != nil {
		t.Fatal(err)
	}
	// Apply a series of random moves and check incremental state equals a
	// from-scratch recomputation after each.
	for step := 0; step < 30; step++ {
		u := graph.Node(rng.Intn(40))
		to := rng.Intn(k)
		if to == s.Part(u) || s.Count(s.Part(u)) == 1 {
			continue
		}
		s.Move(u, to)
		copy(parts, s.Parts())
		want := metrics.BandwidthMatrix(g, parts, k)
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				if s.Bandwidth(i, j) != want[i][j] {
					t.Fatalf("step %d: bw[%d][%d] = %d, want %d", step, i, j, s.Bandwidth(i, j), want[i][j])
				}
			}
		}
		wantRes := metrics.PartResources(g, parts, k)
		for i := 0; i < k; i++ {
			if s.Resource(i) != wantRes[i] {
				t.Fatalf("step %d: res[%d] = %d, want %d", step, i, s.Resource(i), wantRes[i])
			}
		}
	}
}

func TestMoveDeltaMatchesApply(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := randomConnected(rng, 30)
	csr := g.ToCSR()
	k := 3
	var bmax int64 = 25
	parts := make([]int, 30)
	for i := range parts {
		parts[i] = rng.Intn(k)
	}
	s, err := pstate.New(csr, parts, pstate.Config{K: k, Constraints: metrics.Constraints{Bmax: bmax}})
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 40; step++ {
		u := graph.Node(rng.Intn(30))
		to := rng.Intn(k)
		if to == s.Part(u) || s.Count(s.Part(u)) == 1 {
			continue
		}
		exBefore, _, _ := s.Excess()
		cutBefore := s.Cut()
		cd, ed, _ := s.MoveDelta(u, to)
		s.Move(u, to)
		copy(parts, s.Parts())
		exAfter, _, _ := s.Excess()
		if wantEx := bwExcessOf(g, parts, k, bmax); exAfter != wantEx {
			t.Fatalf("step %d: excess = %d, want %d", step, exAfter, wantEx)
		}
		cutAfter := metrics.EdgeCut(g, parts)
		if s.Cut() != cutAfter {
			t.Fatalf("step %d: cut = %d, want %d", step, s.Cut(), cutAfter)
		}
		if exAfter-exBefore != ed {
			t.Fatalf("step %d: excess delta predicted %d, actual %d", step, ed, exAfter-exBefore)
		}
		if cutAfter-cutBefore != cd {
			t.Fatalf("step %d: cut delta predicted %d, actual %d", step, cd, cutAfter-cutBefore)
		}
	}
}

func TestRepairBandwidthFixesViolation(t *testing.T) {
	// Two halves with a heavy bundle of edges between them; a third part
	// can absorb boundary nodes to split the traffic.
	g := graph.New(9)
	// Parts: 0 = {0,1,2}, 1 = {3,4,5}, 2 = {6,7,8}.
	parts := []int{0, 0, 0, 1, 1, 1, 2, 2, 2}
	// Heavy traffic between parts 0 and 1 via nodes 2-3 and 1-4.
	g.MustAddEdge(2, 3, 10)
	g.MustAddEdge(1, 4, 10)
	// Light internal edges.
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(3, 4, 1)
	g.MustAddEdge(4, 5, 1)
	g.MustAddEdge(6, 7, 1)
	g.MustAddEdge(7, 8, 1)
	// Links so part 2 is adjacent to both.
	g.MustAddEdge(5, 6, 1)
	g.MustAddEdge(0, 8, 1)

	c := metrics.Constraints{Bmax: 12}
	if metrics.Feasible(g, parts, 3, c) {
		t.Fatal("test setup: expected initial violation")
	}
	st := RepairBandwidth(g, parts, 3, c, 0)
	if !st.Feasible {
		t.Fatalf("repair failed: %+v, bw=%v", st, metrics.BandwidthMatrix(g, parts, 3))
	}
	if !metrics.Feasible(g, parts, 3, c) {
		t.Fatal("stats claim feasible but metrics disagree")
	}
	if st.Moves == 0 {
		t.Fatal("repair reported no moves despite fixing a violation")
	}
	if st.ExcessAfter != 0 || st.ExcessBefore <= 0 {
		t.Fatalf("excess accounting wrong: %+v", st)
	}
}

func TestRepairBandwidthNoopWhenFeasible(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randomConnected(rng, 20)
	parts := make([]int, 20)
	for i := range parts {
		parts[i] = i % 2
	}
	huge := metrics.Constraints{Bmax: 1 << 40}
	st := RepairBandwidth(g, parts, 2, huge, 0)
	if !st.Feasible || st.Moves != 0 {
		t.Fatalf("feasible input should be a no-op: %+v", st)
	}
	// Bmax <= 0 disables the pass entirely.
	st2 := RepairBandwidth(g, parts, 2, metrics.Constraints{}, 0)
	if !st2.Feasible || st2.Moves != 0 {
		t.Fatalf("unconstrained input should be a no-op: %+v", st2)
	}
}

func TestRepairBandwidthRespectsRmax(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 30)
		k := 3
		parts := make([]int, 30)
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		res := metrics.PartResources(g, parts, k)
		var rmax int64
		for _, r := range res {
			if r > rmax {
				rmax = r
			}
		}
		c := metrics.Constraints{Bmax: 10, Rmax: rmax}
		RepairBandwidth(g, parts, k, c, 4)
		for p, r := range metrics.PartResources(g, parts, k) {
			if r > rmax {
				t.Fatalf("trial %d: part %d resource %d > Rmax %d", trial, p, r, rmax)
			}
		}
	}
}

func TestRepairBandwidthNeverIncreasesExcess(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 10+rng.Intn(40))
		k := 2 + rng.Intn(4)
		parts := make([]int, g.NumNodes())
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		bmax := int64(1 + rng.Intn(30))
		c := metrics.Constraints{Bmax: bmax}
		before := bwExcessOf(g, parts, k, bmax)
		st := RepairBandwidth(g, parts, k, c, 4)
		if st.ExcessBefore != before {
			return false
		}
		after := bwExcessOf(g, parts, k, bmax)
		return st.ExcessAfter == after && after <= before &&
			metrics.Validate(g, parts, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRebalanceResources(t *testing.T) {
	// Part 0 holds everything; rmax forces spreading across 3 parts.
	g := graph.NewWithWeights([]int64{10, 10, 10, 10, 10, 10})
	for i := 1; i < 6; i++ {
		g.MustAddEdge(graph.Node(i-1), graph.Node(i), 1)
	}
	parts := []int{0, 0, 0, 0, 1, 2}
	moves, ok := RebalanceResources(g, parts, 3, 20, 0)
	if !ok {
		t.Fatalf("rebalance failed; res=%v", metrics.PartResources(g, parts, 3))
	}
	if moves == 0 {
		t.Fatal("expected moves")
	}
	for p, r := range metrics.PartResources(g, parts, 3) {
		if r > 20 {
			t.Fatalf("part %d still overflows: %d", p, r)
		}
	}
}

func TestRebalanceResourcesImpossible(t *testing.T) {
	// One node heavier than rmax can never fit.
	g := graph.NewWithWeights([]int64{100, 1})
	g.MustAddEdge(0, 1, 1)
	parts := []int{0, 1}
	_, ok := RebalanceResources(g, parts, 2, 50, 0)
	if ok {
		t.Fatal("impossible instance reported balanced")
	}
}

func TestRebalanceResourcesNoopWhenFits(t *testing.T) {
	g := graph.NewWithWeights([]int64{5, 5})
	g.MustAddEdge(0, 1, 1)
	parts := []int{0, 1}
	moves, ok := RebalanceResources(g, parts, 2, 10, 0)
	if !ok || moves != 0 {
		t.Fatalf("fitting input should be a no-op: moves=%d ok=%v", moves, ok)
	}
	// rmax <= 0 disables the pass.
	moves, ok = RebalanceResources(g, parts, 2, 0, 0)
	if !ok || moves != 0 {
		t.Fatal("disabled pass should be a no-op")
	}
}

func TestPropertyRebalanceNeverOverflowsFittingParts(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 10+rng.Intn(30))
		k := 2 + rng.Intn(3)
		parts := make([]int, g.NumNodes())
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		// Generous bound: total/k * 2.
		rmax := 2 * g.TotalNodeWeight() / int64(k)
		RebalanceResources(g, parts, k, rmax, 8)
		return metrics.Validate(g, parts, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
