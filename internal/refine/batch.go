package refine

import (
	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pool"
	"ppnpart/internal/pstate"
)

// BatchOptions configures BatchKWayWS.
type BatchOptions struct {
	// K is the number of parts. Required.
	K int
	// Constraints carries Bmax/Rmax; the batch pass never accepts a round
	// that worsens the feasibility-first score under them.
	Constraints metrics.Constraints
	// MaxRounds bounds the number of gain-sweep/select/apply rounds
	// (default 64; rounds also stop when gains dry up).
	MaxRounds int
	// Workers is the gain-sweep chunk fan-out (default: the pool's
	// width). The sweep writes each node's candidate into a slot indexed
	// by the node, so any worker count produces bit-identical results.
	Workers int
	// Pool executes the sweep chunks (nil: the shared pool.Default()).
	Pool *pool.Pool
	// Record enables RoundSizes/RoundGains/RoundCands/RoundQuotas capture
	// (trace support); off, the pass allocates nothing beyond the pooled
	// workspace buffers.
	Record bool
	// PreApply, when non-nil, runs immediately before a round's selected
	// batch is applied. It is the failure-injection boundary: a panic here
	// leaves the caller's assignment untouched (the pass mutates only its
	// own incremental state until it returns).
	PreApply func(round, batch int)
	// RoundHook, when non-nil, observes the incremental state right after
	// a round's batch has been applied, before the accept/undo decision.
	// Differential tests use it to bit-compare the maintained quantities
	// against a from-scratch metrics recompute.
	RoundHook func(round int, st *pstate.State)
}

// BatchStats summarizes one batch refinement pass.
type BatchStats struct {
	// Rounds is the number of accepted move rounds; Moves totals their
	// batch sizes.
	Rounds int
	Moves  int
	// RoundSizes/RoundGains are the per-round batch sizes and summed cut
	// gains (only with BatchOptions.Record).
	RoundSizes []int
	RoundGains []int64
	// RoundCands/RoundQuotas are the per-round candidate counts and
	// effective per-part quotas (only with Record): the round's accept
	// rate — which drives the adaptive quota — is
	// RoundSizes[i]/RoundCands[i].
	RoundCands  []int
	RoundQuotas []int
	// CutBefore and CutAfter bracket the global edge cut.
	CutBefore, CutAfter int64
}

// Improved reports whether the pass reduced the cut.
func (s BatchStats) Improved() bool { return s.CutAfter < s.CutBefore }

// batchBucketsKey caches the pass's gainBuckets on the workspace so
// repeated levels and cycles reuse the same bucket storage.
type batchBucketsKey struct{}

func batchBuckets(ws *arena.Workspace) *gainBuckets {
	if gb, _ := ws.Ext(batchBucketsKey{}).(*gainBuckets); gb != nil {
		return gb
	}
	gb := &gainBuckets{}
	ws.SetExt(batchBucketsKey{}, gb)
	return gb
}

// BatchKWay is BatchKWayWS with a throwaway workspace and CSR snapshot.
func BatchKWay(g *graph.Graph, parts []int, opts BatchOptions) BatchStats {
	ws := arena.Get()
	defer arena.Put(ws)
	return BatchKWayWS(ws, g.ToCSR(), parts, opts)
}

// BatchKWayWS runs data-parallel batch k-way refinement on a prebuilt CSR
// snapshot, mutating parts in place. Each round:
//
//  1. Gain sweep: boundary vertices are scanned in chunked CSR sweeps
//     fanned over the shared worker pool; each vertex's best
//     positive-gain destination (KWayFM's gain rule: connectivity delta,
//     ties to the lowest part id) lands in a per-node slot of a pooled
//     buffer, so the sweep result is independent of the worker count and
//     chunk split. A vertex's candidate depends only on its own and its
//     neighbors' assignments, so after the first round the sweep is
//     incremental: only vertices adjacent to the previous round's moves
//     are re-scanned, and every other slot is provably still current.
//  2. Conflict-free selection: candidates are held in an incremental
//     gain-bucket ranking (gainBuckets: log2-quantized buckets, exact
//     (gain desc, node asc) order within and across buckets) that is
//     re-bucketed only for the dirty set between rounds, and greedily
//     accepted under a per-part quota, a tentative
//     Rmax/never-empty-a-part check, and an independence rule —
//     accepting a vertex blocks all its neighbors for the round.
//     Independence makes the pre-computed gains exactly additive: no
//     accepted move can invalidate another's gain. The quota divisor
//     adapts to the previous round's accept rate within [K, 4K] (round 0
//     uses the classic candidates/2K).
//  3. Apply: the batch is applied in selection order through an
//     incremental pstate.State; the round is kept only if the applied
//     state's feasibility-first score improved (Bmax/Rmax re-checked on
//     the applied state, not the candidates). A rejected round under a
//     loosened quota is undone and retried once at the default divisor;
//     a rejected round at the default divisor is undone move-for-move
//     and ends the pass.
//
// Rounds repeat until gains dry up, a round fails the applied-state check,
// or MaxRounds is hit. The pass is deterministic by construction: no
// coloring, no RNG, index-ordered tie-breaks everywhere.
func BatchKWayWS(ws *arena.Workspace, csr *graph.CSR, parts []int, opts BatchOptions) BatchStats {
	n := csr.NumNodes()
	k := opts.K
	if n == 0 || k <= 1 {
		return BatchStats{}
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = opts.Pool.Workers()
	}
	const minChunk = 2048
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}

	st, err := pstate.NewWS(ws, csr, parts, pstate.Config{K: k, Constraints: opts.Constraints})
	if err != nil {
		return BatchStats{}
	}
	stats := BatchStats{CutBefore: st.Cut()}

	// cand[u] = best destination + 1 (0: no candidate); gains[u] its gain.
	cand := ws.Ints.Get(n)
	gains := ws.Int64s.Get(n)
	// blocked[u]: u neighbors an accepted move this round.
	blocked := ws.Bools.Get(n)
	// dirty/dirtyList collect the nodes whose candidate slot must be
	// re-swept next round: the applied moves and their neighborhoods.
	dirty := ws.Bools.Get(n)
	dirtyList := ws.Ints.Cap(n)
	// Per-worker connectivity scratch, carved up front on the owning
	// goroutine (arena pools are single-owner; sweep tasks only write
	// their own k-slot window and their chunk's cand/gains range).
	conn := ws.Int64s.Get(workers * k)
	// Live per-part totals snapshotted each selection attempt.
	res := ws.Int64s.Get(k)
	resT := ws.Int64s.Get(k)
	cnt := ws.Ints.Get(k)
	taken := ws.Ints.Get(k)
	sel := ws.Ints.Cap(n)
	defer func() {
		ws.Ints.Put(cand)
		ws.Int64s.Put(gains)
		ws.Bools.Put(blocked)
		ws.Bools.Put(dirty)
		ws.Ints.Put(dirtyList)
		ws.Int64s.Put(conn)
		ws.Int64s.Put(res)
		ws.Int64s.Put(resT)
		ws.Ints.Put(cnt)
		ws.Ints.Put(taken)
		ws.Ints.Put(sel)
	}()

	gb := batchBuckets(ws)
	gb.reset(n)

	pp := st.Parts()
	rmax := opts.Constraints.Rmax
	prevScore := st.Score()
	// quotaDiv is the adaptive per-part quota divisor: quota =
	// max(1, candidates/quotaDiv), starting at the classic 2K and
	// adapted within [K, 4K] by each accepted round's observed accept
	// rate.
	quotaDiv := 2 * k
rounds:
	for round := 0; round < maxRounds; round++ {
		// (1) Chunked gain sweep over the shared pool. The first round
		// scans every node; later rounds re-scan only the dirty list
		// (previous round's moves plus their neighborhoods) — every
		// other candidate slot is a function of assignments that did not
		// change. Chunks are contiguous ranges, so every write lands in
		// a slot owned by one task.
		todo := n
		if round > 0 {
			todo = len(dirtyList)
		}
		chunk := (todo + workers - 1) / workers
		tasks := 0
		if chunk > 0 {
			tasks = (todo + chunk - 1) / chunk
		}
		dl := dirtyList
		incremental := round > 0
		opts.Pool.Run(tasks, func(w int) {
			lo := w * chunk
			hi := lo + chunk
			if hi > todo {
				hi = todo
			}
			var list []int
			if incremental {
				list = dl[lo:hi]
			}
			sweepGains(csr, pp, conn[w*k:(w+1)*k], k, lo, hi, list, cand, gains)
		})

		// Fold the sweep into the bucket ranking: round 0 inserts every
		// candidate, later rounds re-bucket only the re-swept dirty set.
		if round == 0 {
			for u := 0; u < n; u++ {
				if cand[u] != 0 {
					gb.set(u, gains[u])
				}
			}
		} else {
			for _, u := range dirtyList {
				if cand[u] != 0 {
					gb.set(u, gains[u])
				} else {
					gb.remove(u)
				}
			}
		}
		if gb.count == 0 {
			break
		}

		// Un-block for the next round (touching only what this round
		// set) and collect the dirty set: the moved nodes and everything
		// adjacent to them are the only candidate slots the next sweep
		// must recompute.
		clearBlocked := func() {
			dirtyList = dirtyList[:0]
			for _, u := range sel {
				if !dirty[u] {
					dirty[u] = true
					dirtyList = append(dirtyList, u)
				}
				adj, _ := csr.Row(graph.Node(u))
				for _, v := range adj {
					blocked[v] = false
					if !dirty[v] {
						dirty[v] = true
						dirtyList = append(dirtyList, int(v))
					}
				}
			}
			// dirty is only a dedup aid while building the list; reset it
			// so the next accepted round starts clean. The list itself
			// needs no ordering: sweep results are per-node and
			// independent of scan order.
			for _, u := range dirtyList {
				dirty[u] = false
			}
		}

		for {
			// (2) Deterministic conflict-free selection over the bucket
			// scan (exact (gain desc, node asc) order).
			quota := gb.count / quotaDiv
			if quota < 1 {
				quota = 1
			}
			for p := 0; p < k; p++ {
				res[p] = st.Resource(p)
				cnt[p] = st.Count(p)
			}
			copy(resT, res)
			for p := 0; p < k; p++ {
				taken[p] = 0
			}
			sel = sel[:0]
			gb.scan(func(u int) {
				if blocked[u] {
					return
				}
				to := cand[u] - 1
				from := pp[u]
				if taken[to] >= quota || cnt[from] == 1 {
					return
				}
				w := csr.NodeW[u]
				if rmax > 0 && resT[to]+w > rmax {
					return
				}
				sel = append(sel, u)
				taken[to]++
				cnt[from]--
				cnt[to]++
				resT[from] -= w
				resT[to] += w
				adj, _ := csr.Row(graph.Node(u))
				for _, v := range adj {
					blocked[v] = true
				}
			})
			if len(sel) == 0 {
				break rounds
			}

			// (3) Apply through the incremental state, then re-check the
			// feasibility-first score on the applied state. The selected
			// batch is an independent set — accepting a vertex blocked
			// its whole neighborhood — so every move's maintained deltas
			// depend only on assignments no other selected move touches:
			// the moves commute, and applying them in the scan's
			// emission order is bit-identical to the ascending-node sort
			// this step used to pay for.
			if opts.PreApply != nil {
				opts.PreApply(round, len(sel))
			}
			var roundGain int64
			for _, u := range sel {
				roundGain += gains[u]
				st.Move(graph.Node(u), cand[u]-1)
			}
			if opts.RoundHook != nil {
				opts.RoundHook(round, st)
			}
			if score := st.Score(); score < prevScore {
				prevScore = score
				st.ResetLog()
				stats.Rounds++
				stats.Moves += len(sel)
				if opts.Record {
					stats.RoundSizes = append(stats.RoundSizes, len(sel))
					stats.RoundGains = append(stats.RoundGains, roundGain)
					stats.RoundCands = append(stats.RoundCands, gb.count)
					stats.RoundQuotas = append(stats.RoundQuotas, quota)
				}
				// Adapt the next round's quota to this round's accept
				// rate: a quarter or more of the candidates landing means
				// the quota is the binding constraint (loosen toward K);
				// under ~3% means blocking dominates and big quotas only
				// risk rejected rounds (tighten toward 4K).
				if len(sel)*4 >= gb.count {
					if quotaDiv > k {
						quotaDiv /= 2
						if quotaDiv < k {
							quotaDiv = k
						}
					}
				} else if len(sel)*32 < gb.count {
					if quotaDiv < 4*k {
						quotaDiv *= 2
						if quotaDiv > 4*k {
							quotaDiv = 4 * k
						}
					}
				}
				clearBlocked()
				continue rounds
			}
			// The independent cut gains were positive, but the applied
			// state says the constraint excesses ate them: drop the
			// round.
			for st.Undo() {
			}
			if quotaDiv != 2*k {
				// The adaptively sized batch overshot the applied-state
				// check; un-block this selection and retry once at the
				// default divisor before ending the pass, so adaptation
				// can never cost quality against the classic quota.
				quotaDiv = 2 * k
				for _, u := range sel {
					adj, _ := csr.Row(graph.Node(u))
					for _, v := range adj {
						blocked[v] = false
					}
				}
				continue
			}
			break rounds
		}
	}
	copy(parts, st.Parts())
	stats.CutAfter = st.Cut()
	st.Release(ws)
	return stats
}

// sweepGains computes each scanned node's best single-move candidate
// under KWayFM's gain rule (connectivity delta, ties to the lowest part
// id) against the current assignment. With list nil it scans nodes
// [lo, hi); otherwise it scans exactly the nodes in list (an incremental
// re-sweep). The candidate is a pure function of the node's own and its
// neighbors' assignments — per-part totals are deliberately NOT consulted
// here, the selection phase re-checks Rmax and never-empty-a-part against
// its tentative totals — which is what makes incremental re-sweeps sound.
// conn is the task's private k-slot connectivity scratch; cand/gains
// writes stay inside the task's node set.
func sweepGains(csr *graph.CSR, parts []int, conn []int64,
	k, lo, hi int, list []int, cand []int, gains []int64) {
	for i := lo; i < hi; i++ {
		u := i
		if list != nil {
			u = list[i-lo]
		}
		cand[u] = 0
		from := parts[u]
		for i := range conn {
			conn[i] = 0
		}
		boundary := false
		adj, wts := csr.Row(graph.Node(u))
		for i, v := range adj {
			conn[parts[v]] += wts[i]
			if parts[v] != from {
				boundary = true
			}
		}
		if !boundary {
			continue
		}
		bestTo := -1
		var bestGain int64
		for to := 0; to < k; to++ {
			if to == from || conn[to] == 0 {
				continue
			}
			// bestGain starts at 0, so only strictly improving moves are
			// kept; ascending iteration breaks ties toward the lowest
			// part id — the same discipline as KWayFMWS.
			if gain := conn[to] - conn[from]; gain > bestGain {
				bestGain = gain
				bestTo = to
			}
		}
		if bestTo >= 0 {
			cand[u] = bestTo + 1
			gains[u] = bestGain
		}
	}
}
