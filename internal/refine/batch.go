package refine

import (
	"runtime"
	"sort"
	"sync"

	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// BatchOptions configures BatchKWayWS.
type BatchOptions struct {
	// K is the number of parts. Required.
	K int
	// Constraints carries Bmax/Rmax; the batch pass never accepts a round
	// that worsens the feasibility-first score under them.
	Constraints metrics.Constraints
	// MaxRounds bounds the number of gain-sweep/select/apply rounds
	// (default 64; rounds also stop when gains dry up).
	MaxRounds int
	// Workers is the gain-sweep fan-out (default GOMAXPROCS). The sweep
	// writes each node's candidate into a slot indexed by the node, so any
	// worker count produces bit-identical results.
	Workers int
	// Record enables RoundSizes/RoundGains capture (trace support); off,
	// the pass allocates nothing beyond the pooled workspace buffers.
	Record bool
	// PreApply, when non-nil, runs immediately before a round's selected
	// batch is applied. It is the failure-injection boundary: a panic here
	// leaves the caller's assignment untouched (the pass mutates only its
	// own incremental state until it returns).
	PreApply func(round, batch int)
	// RoundHook, when non-nil, observes the incremental state right after
	// a round's batch has been applied, before the accept/undo decision.
	// Differential tests use it to bit-compare the maintained quantities
	// against a from-scratch metrics recompute.
	RoundHook func(round int, st *pstate.State)
}

// BatchStats summarizes one batch refinement pass.
type BatchStats struct {
	// Rounds is the number of accepted move rounds; Moves totals their
	// batch sizes.
	Rounds int
	Moves  int
	// RoundSizes/RoundGains are the per-round batch sizes and summed cut
	// gains (only with BatchOptions.Record).
	RoundSizes []int
	RoundGains []int64
	// CutBefore and CutAfter bracket the global edge cut.
	CutBefore, CutAfter int64
}

// Improved reports whether the pass reduced the cut.
func (s BatchStats) Improved() bool { return s.CutAfter < s.CutBefore }

// BatchKWay is BatchKWayWS with a throwaway workspace and CSR snapshot.
func BatchKWay(g *graph.Graph, parts []int, opts BatchOptions) BatchStats {
	ws := arena.Get()
	defer arena.Put(ws)
	return BatchKWayWS(ws, g.ToCSR(), parts, opts)
}

// BatchKWayWS runs data-parallel batch k-way refinement on a prebuilt CSR
// snapshot, mutating parts in place. Each round:
//
//  1. Gain sweep: boundary vertices are scanned in chunked CSR sweeps
//     fanned across Workers goroutines; each vertex's best positive-gain
//     destination (KWayFM's gain rule: connectivity delta, ties to the
//     lowest part id) lands in a per-node slot of a pooled buffer, so the
//     sweep result is independent of the worker count and chunk split.
//     A vertex's candidate depends only on its own and its neighbors'
//     assignments, so after the first round the sweep is incremental:
//     only vertices adjacent to the previous round's moves are
//     re-scanned, and every other slot is provably still current.
//  2. Conflict-free selection: candidates are ranked by (gain desc, node
//     asc) and greedily accepted under a per-part quota of
//     max(1, candidates/(2K)) moves, a tentative Rmax/never-empty-a-part
//     check, and an independence rule — accepting a vertex blocks all its
//     neighbors for the round. Independence makes the pre-computed gains
//     exactly additive: no accepted move can invalidate another's gain.
//  3. Apply: the batch is applied in ascending node order through an
//     incremental pstate.State; the round is kept only if the applied
//     state's feasibility-first score improved (Bmax/Rmax re-checked on
//     the applied state, not the candidates), otherwise it is undone
//     move-for-move and the pass ends.
//
// Rounds repeat until gains dry up, a round fails the applied-state check,
// or MaxRounds is hit. The pass is deterministic by construction: no
// coloring, no RNG, index-ordered tie-breaks everywhere.
func BatchKWayWS(ws *arena.Workspace, csr *graph.CSR, parts []int, opts BatchOptions) BatchStats {
	n := csr.NumNodes()
	k := opts.K
	if n == 0 || k <= 1 {
		return BatchStats{}
	}
	maxRounds := opts.MaxRounds
	if maxRounds <= 0 {
		maxRounds = 64
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	const minChunk = 2048
	if max := (n + minChunk - 1) / minChunk; workers > max {
		workers = max
	}

	st, err := pstate.NewWS(ws, csr, parts, pstate.Config{K: k, Constraints: opts.Constraints})
	if err != nil {
		return BatchStats{}
	}
	stats := BatchStats{CutBefore: st.Cut()}

	// cand[u] = best destination + 1 (0: no candidate); gains[u] its gain.
	cand := ws.Ints.Get(n)
	gains := ws.Int64s.Get(n)
	// blocked[u]: u neighbors an accepted move this round.
	blocked := ws.Bools.Get(n)
	// dirty/dirtyList collect the nodes whose candidate slot must be
	// re-swept next round: the applied moves and their neighborhoods.
	dirty := ws.Bools.Get(n)
	dirtyList := ws.Ints.Cap(n)
	// Per-worker connectivity scratch, carved up front on the owning
	// goroutine (arena pools are single-owner; workers only write their
	// own k-slot window and their chunk's cand/gains range).
	conn := ws.Int64s.Get(workers * k)
	// Live per-part totals snapshotted each round for the sweep.
	res := ws.Int64s.Get(k)
	resT := ws.Int64s.Get(k)
	cnt := ws.Ints.Get(k)
	taken := ws.Ints.Get(k)
	order := ws.Ints.Cap(n)
	sel := ws.Ints.Cap(n)
	defer func() {
		ws.Ints.Put(cand)
		ws.Int64s.Put(gains)
		ws.Bools.Put(blocked)
		ws.Bools.Put(dirty)
		ws.Ints.Put(dirtyList)
		ws.Int64s.Put(conn)
		ws.Int64s.Put(res)
		ws.Int64s.Put(resT)
		ws.Ints.Put(cnt)
		ws.Ints.Put(taken)
		ws.Ints.Put(order)
		ws.Ints.Put(sel)
	}()

	pp := st.Parts()
	rmax := opts.Constraints.Rmax
	prevScore := st.Score()
	for round := 0; round < maxRounds; round++ {
		for p := 0; p < k; p++ {
			res[p] = st.Resource(p)
			cnt[p] = st.Count(p)
		}
		// (1) Chunked gain sweep. The first round scans every node; later
		// rounds re-scan only the dirty list (previous round's moves plus
		// their neighborhoods) — every other candidate slot is a function
		// of assignments that did not change. Chunks are contiguous
		// ranges, so every write lands in a slot owned by one worker.
		todo := n
		if round > 0 {
			todo = len(dirtyList)
		}
		chunk := (todo + workers - 1) / workers
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			lo := w * chunk
			hi := lo + chunk
			if hi > todo {
				hi = todo
			}
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func(lo, hi int, conn []int64) {
				defer wg.Done()
				var list []int
				if round > 0 {
					list = dirtyList[lo:hi]
				}
				sweepGains(csr, pp, conn, k, lo, hi, list, cand, gains)
			}(lo, hi, conn[w*k:(w+1)*k])
		}
		wg.Wait()

		// (2) Deterministic conflict-free selection.
		order = order[:0]
		for u := 0; u < n; u++ {
			if cand[u] != 0 {
				order = append(order, u)
			}
		}
		if len(order) == 0 {
			break
		}
		sort.Slice(order, func(i, j int) bool {
			if gains[order[i]] != gains[order[j]] {
				return gains[order[i]] > gains[order[j]]
			}
			return order[i] < order[j]
		})
		quota := len(order) / (2 * k)
		if quota < 1 {
			quota = 1
		}
		copy(resT, res)
		for p := 0; p < k; p++ {
			taken[p] = 0
		}
		sel = sel[:0]
		for _, u := range order {
			if blocked[u] {
				continue
			}
			to := cand[u] - 1
			from := pp[u]
			if taken[to] >= quota || cnt[from] == 1 {
				continue
			}
			w := csr.NodeW[u]
			if rmax > 0 && resT[to]+w > rmax {
				continue
			}
			sel = append(sel, u)
			taken[to]++
			cnt[from]--
			cnt[to]++
			resT[from] -= w
			resT[to] += w
			adj, _ := csr.Row(graph.Node(u))
			for _, v := range adj {
				blocked[v] = true
			}
		}
		// Un-block for the next round (touching only what this round set)
		// and collect the dirty set: the moved nodes and everything
		// adjacent to them are the only candidate slots the next sweep
		// must recompute.
		clearBlocked := func() {
			dirtyList = dirtyList[:0]
			for _, u := range sel {
				if !dirty[u] {
					dirty[u] = true
					dirtyList = append(dirtyList, u)
				}
				adj, _ := csr.Row(graph.Node(u))
				for _, v := range adj {
					blocked[v] = false
					if !dirty[v] {
						dirty[v] = true
						dirtyList = append(dirtyList, int(v))
					}
				}
			}
			// dirty is only a dedup aid while building the list; reset it
			// so the next accepted round starts clean. The list itself
			// needs no ordering: sweep results are per-node and
			// independent of scan order.
			for _, u := range dirtyList {
				dirty[u] = false
			}
		}
		if len(sel) == 0 {
			break
		}
		sort.Ints(sel)

		// (3) Apply through the incremental state, then re-check the
		// feasibility-first score on the applied state.
		if opts.PreApply != nil {
			opts.PreApply(round, len(sel))
		}
		var roundGain int64
		for _, u := range sel {
			roundGain += gains[u]
			st.Move(graph.Node(u), cand[u]-1)
		}
		if opts.RoundHook != nil {
			opts.RoundHook(round, st)
		}
		if score := st.Score(); score < prevScore {
			prevScore = score
			st.ResetLog()
			stats.Rounds++
			stats.Moves += len(sel)
			if opts.Record {
				stats.RoundSizes = append(stats.RoundSizes, len(sel))
				stats.RoundGains = append(stats.RoundGains, roundGain)
			}
			clearBlocked()
		} else {
			// The independent cut gains were positive, but the applied
			// state says the constraint excesses ate them: drop the round.
			for st.Undo() {
			}
			break
		}
	}
	copy(parts, st.Parts())
	stats.CutAfter = st.Cut()
	st.Release(ws)
	return stats
}

// sweepGains computes each scanned node's best single-move candidate
// under KWayFM's gain rule (connectivity delta, ties to the lowest part
// id) against the current assignment. With list nil it scans nodes
// [lo, hi); otherwise it scans exactly the nodes in list (an incremental
// re-sweep). The candidate is a pure function of the node's own and its
// neighbors' assignments — per-part totals are deliberately NOT consulted
// here, the selection phase re-checks Rmax and never-empty-a-part against
// its tentative totals — which is what makes incremental re-sweeps sound.
// conn is the worker's private k-slot connectivity scratch; cand/gains
// writes stay inside the worker's node set.
func sweepGains(csr *graph.CSR, parts []int, conn []int64,
	k, lo, hi int, list []int, cand []int, gains []int64) {
	for i := lo; i < hi; i++ {
		u := i
		if list != nil {
			u = list[i-lo]
		}
		cand[u] = 0
		from := parts[u]
		for i := range conn {
			conn[i] = 0
		}
		boundary := false
		adj, wts := csr.Row(graph.Node(u))
		for i, v := range adj {
			conn[parts[v]] += wts[i]
			if parts[v] != from {
				boundary = true
			}
		}
		if !boundary {
			continue
		}
		bestTo := -1
		var bestGain int64
		for to := 0; to < k; to++ {
			if to == from || conn[to] == 0 {
				continue
			}
			// bestGain starts at 0, so only strictly improving moves are
			// kept; ascending iteration breaks ties toward the lowest
			// part id — the same discipline as KWayFMWS.
			if gain := conn[to] - conn[from]; gain > bestGain {
				bestGain = gain
				bestTo = to
			}
		}
		if bestTo >= 0 {
			cand[u] = bestTo + 1
			gains[u] = bestGain
		}
	}
}
