package refine

import (
	"math"

	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// BandwidthStats reports the outcome of a bandwidth-repair run.
type BandwidthStats struct {
	// Moves is the number of node moves applied.
	Moves int
	// Passes is the number of repair sweeps executed.
	Passes int
	// ExcessBefore and ExcessAfter are the summed pairwise-bandwidth
	// excesses over Bmax before and after the run.
	ExcessBefore, ExcessAfter int64
	// Feasible reports whether every pair now meets Bmax.
	Feasible bool
}

// RepairBandwidth greedily moves boundary nodes between parts to drive
// every pairwise bandwidth under c.Bmax, while respecting c.Rmax on the
// destination part when possible (the paper's FM-based bandwidth-repair
// step of §IV-B/§IV-C: "Partitions will be changed and nodes will move
// between partitions as far as constraints met"). Each pass considers all
// nodes incident to an over-budget pair and applies the move with the best
// (excess reduction, cut reduction) lexicographic gain; a node moves at
// most once per pass. Stops when feasible, when a pass makes no progress,
// or after maxPasses (default 16).
func RepairBandwidth(g *graph.Graph, parts []int, k int, c metrics.Constraints, maxPasses int) BandwidthStats {
	ws := arena.Get()
	defer arena.Put(ws)
	return RepairBandwidthWS(ws, g.ToCSR(), parts, k, c, maxPasses)
}

// RepairBandwidthWS is RepairBandwidth on a prebuilt CSR snapshot — the
// form the multilevel driver uses, building one CSR per hierarchy level
// and sharing it across every refinement stage at that level — drawing
// the partition state and the per-pass moved set from ws.
func RepairBandwidthWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, c metrics.Constraints, maxPasses int) BandwidthStats {
	st := BandwidthStats{}
	if c.Bmax <= 0 {
		st.Feasible = true
		return st
	}
	s, err := pstate.NewWS(ws, csr, parts, pstate.Config{K: k, Constraints: metrics.Constraints{Bmax: c.Bmax}})
	if err != nil {
		return st
	}
	moved := ws.Bools.Get(csr.NumNodes())
	st = repairBandwidthState(s, csr, c, maxPasses, moved)
	copy(parts, s.Parts())
	ws.Bools.Put(moved)
	s.Release(ws)
	return st
}

// repairBandwidthState runs the repair sweeps against an existing state
// whose maintained Bmax equals c.Bmax. The caller reads the repaired
// assignment from s.Parts(). moved is zeroed node-length scratch.
func repairBandwidthState(s *pstate.State, csr *graph.CSR, c metrics.Constraints, maxPasses int, moved []bool) BandwidthStats {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	st := BandwidthStats{}
	bwExcess, _, _ := s.Excess()
	st.ExcessBefore = bwExcess
	st.ExcessAfter = st.ExcessBefore
	if st.ExcessBefore == 0 {
		st.Feasible = true
		return st
	}
	k := s.K
	n := csr.NumNodes()
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		if pass > 0 {
			clear(moved)
		}
		progressed := false
		for {
			// Best lexicographic (excess reduction, cut reduction) move over
			// all nodes incident to a violating pair.
			var bestU graph.Node = -1
			bestTo := -1
			var bestExcess, bestCut int64
			for u := 0; u < n; u++ {
				if moved[u] {
					continue
				}
				un := graph.Node(u)
				from := s.Part(un)
				if s.Count(from) == 1 {
					continue
				}
				// Is u on a violating pair's boundary?
				touches := false
				adj, _ := csr.Row(un)
				for _, v := range adj {
					p := s.Part(v)
					if p != from && s.Bandwidth(from, p) > c.Bmax {
						touches = true
						break
					}
				}
				if !touches {
					continue
				}
				w := csr.NodeW[u]
				for to := 0; to < k; to++ {
					if to == from {
						continue
					}
					if lim := c.RmaxFor(to); lim > 0 && s.Resource(to)+w > lim {
						continue
					}
					cd, ed, _ := s.MoveDelta(un, to)
					if ed < bestExcess || (ed == bestExcess && ed < 0 && cd < bestCut) {
						bestU, bestTo, bestExcess, bestCut = un, to, ed, cd
					}
				}
			}
			if bestU < 0 || bestExcess >= 0 {
				break
			}
			s.Move(bestU, bestTo)
			moved[bestU] = true
			st.Moves++
			progressed = true
			st.ExcessAfter += bestExcess
			if st.ExcessAfter == 0 {
				st.Feasible = true
				return st
			}
		}
		if !progressed {
			break
		}
	}
	st.ExcessAfter, _, _ = s.Excess()
	st.Feasible = st.ExcessAfter == 0
	return st
}

// RebalanceResources moves nodes out of parts whose resource total
// exceeds rmax into the part with the most free space, preferring moves
// that increase the cut least. It is the repair used after the greedy
// initial partitioning when forced placement overfilled a part. Stops
// when all parts fit, when stuck, or after maxPasses (default 16).
// Returns the number of moves applied and whether all parts now fit.
func RebalanceResources(g *graph.Graph, parts []int, k int, rmax int64, maxPasses int) (int, bool) {
	if rmax <= 0 {
		return 0, true
	}
	ws := arena.Get()
	defer arena.Put(ws)
	return RebalanceResourcesWS(ws, g.ToCSR(), parts, k, rmax, maxPasses)
}

// RebalanceResourcesWS is RebalanceResources on a prebuilt CSR snapshot
// with the per-part totals and connectivity scratch drawn from ws.
func RebalanceResourcesWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, rmax int64, maxPasses int) (int, bool) {
	if rmax <= 0 {
		return 0, true
	}
	lims := ws.Int64s.Get(k)
	defer ws.Int64s.Put(lims)
	for p := range lims {
		lims[p] = rmax
	}
	return rebalanceLims(ws, csr, parts, k, lims, maxPasses)
}

// RebalanceResourcesCapsWS is RebalanceResourcesWS under heterogeneous
// per-part bounds (c.RmaxFor): a part is overfull relative to its own
// capacity, and destinations are sized by theirs. Parts with no active
// bound are never overfull and accept any node. Returns (0, true) when no
// part has an active bound.
func RebalanceResourcesCapsWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, c metrics.Constraints, maxPasses int) (int, bool) {
	lims := ws.Int64s.Get(k)
	defer ws.Int64s.Put(lims)
	active := false
	for p := range lims {
		lims[p] = c.RmaxFor(p)
		if lims[p] > 0 {
			active = true
		}
	}
	if !active {
		return 0, true
	}
	return rebalanceLims(ws, csr, parts, k, lims, maxPasses)
}

// rebalanceLims is the shared rebalance implementation; lims[p] bounds
// part p (<= 0 = unbounded: never overfull, unlimited destination room).
func rebalanceLims(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, lims []int64, maxPasses int) (int, bool) {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	res := ws.Int64s.Get(k)
	cnt := ws.Ints.Get(k)
	defer func() {
		ws.Int64s.Put(res)
		ws.Ints.Put(cnt)
	}()
	n := csr.NumNodes()
	for u := 0; u < n; u++ {
		res[parts[u]] += csr.NodeW[u]
		cnt[parts[u]]++
	}
	fits := func() bool {
		for p, r := range res {
			if lims[p] > 0 && r > lims[p] {
				return false
			}
		}
		return true
	}
	moves := 0
	conn := ws.Int64s.Get(k)
	defer ws.Int64s.Put(conn)
	for pass := 0; pass < maxPasses && !fits(); pass++ {
		progressed := false
		for u := 0; u < n && !fits(); u++ {
			un := graph.Node(u)
			from := parts[u]
			if lims[from] <= 0 || res[from] <= lims[from] || cnt[from] == 1 {
				continue
			}
			w := csr.NodeW[u]
			for i := range conn {
				conn[i] = 0
			}
			adj, wts := csr.Row(un)
			for i, v := range adj {
				conn[parts[v]] += wts[i]
			}
			// Choose the destination that fits and costs the least cut,
			// breaking ties toward the most free space.
			bestTo := -1
			var bestCost int64
			var bestFree int64
			for to := 0; to < k; to++ {
				if to == from {
					continue
				}
				tl := lims[to]
				if tl > 0 && res[to]+w > tl {
					continue
				}
				cost := conn[from] - conn[to]
				free := int64(math.MaxInt64)
				if tl > 0 {
					free = tl - (res[to] + w)
				}
				if bestTo < 0 || cost < bestCost || (cost == bestCost && free > bestFree) {
					bestTo, bestCost, bestFree = to, cost, free
				}
			}
			if bestTo < 0 {
				continue
			}
			parts[u] = bestTo
			res[from] -= w
			res[bestTo] += w
			cnt[from]--
			cnt[bestTo]++
			moves++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return moves, fits()
}
