package refine

import (
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// BandwidthStats reports the outcome of a bandwidth-repair run.
type BandwidthStats struct {
	// Moves is the number of node moves applied.
	Moves int
	// Passes is the number of repair sweeps executed.
	Passes int
	// ExcessBefore and ExcessAfter are the summed pairwise-bandwidth
	// excesses over Bmax before and after the run.
	ExcessBefore, ExcessAfter int64
	// Feasible reports whether every pair now meets Bmax.
	Feasible bool
}

// bwState tracks the pairwise bandwidth matrix and per-part resources
// incrementally so each candidate move is O(degree).
type bwState struct {
	g     *graph.Graph
	parts []int
	k     int
	bw    [][]int64
	res   []int64
	cnt   []int
	conn  []int64 // scratch: per-part connectivity of the node in hand
}

func newBWState(g *graph.Graph, parts []int, k int) *bwState {
	s := &bwState{
		g:     g,
		parts: parts,
		k:     k,
		bw:    metrics.BandwidthMatrix(g, parts, k),
		res:   metrics.PartResources(g, parts, k),
		cnt:   metrics.PartSizes(parts, k),
		conn:  make([]int64, k),
	}
	return s
}

// connectivity fills the scratch buffer with u's edge weight into each
// part and returns it. The buffer is invalidated by the next call.
func (s *bwState) connectivity(u graph.Node) []int64 {
	for i := range s.conn {
		s.conn[i] = 0
	}
	for _, h := range s.g.Neighbors(u) {
		s.conn[s.parts[h.To]] += h.Weight
	}
	return s.conn
}

// excess returns the total pairwise bandwidth above bmax.
func (s *bwState) excess(bmax int64) int64 {
	var e int64
	for i := 0; i < s.k; i++ {
		for j := i + 1; j < s.k; j++ {
			if s.bw[i][j] > bmax {
				e += s.bw[i][j] - bmax
			}
		}
	}
	return e
}

// moveDelta computes, without mutating, how the total excess over bmax
// would change if u moved from its part to `to`, along with the cut delta.
func (s *bwState) moveDelta(u graph.Node, to int, bmax int64) (excessDelta, cutDelta int64) {
	from := s.parts[u]
	conn := s.connectivity(u)
	over := func(v int64) int64 {
		if v > bmax {
			return v - bmax
		}
		return 0
	}
	// Pairs whose bandwidth changes: (from,p) loses conn[p] for p != from,to;
	// (to,p) gains conn[p] for p != from,to; (from,to) becomes
	// bw[from][to] - conn[to] + conn[from].
	for p := 0; p < s.k; p++ {
		if p == from || p == to {
			continue
		}
		if conn[p] == 0 {
			continue
		}
		excessDelta += over(s.bw[from][p]-conn[p]) - over(s.bw[from][p])
		excessDelta += over(s.bw[to][p]+conn[p]) - over(s.bw[to][p])
	}
	newFT := s.bw[from][to] - conn[to] + conn[from]
	excessDelta += over(newFT) - over(s.bw[from][to])
	cutDelta = conn[from] - conn[to]
	return excessDelta, cutDelta
}

// apply moves u to part `to`, updating the matrices.
func (s *bwState) apply(u graph.Node, to int) {
	from := s.parts[u]
	conn := s.connectivity(u)
	for p := 0; p < s.k; p++ {
		if p == from || p == to {
			continue
		}
		s.bw[from][p] -= conn[p]
		s.bw[p][from] = s.bw[from][p]
		s.bw[to][p] += conn[p]
		s.bw[p][to] = s.bw[to][p]
	}
	nft := s.bw[from][to] - conn[to] + conn[from]
	s.bw[from][to] = nft
	s.bw[to][from] = nft
	w := s.g.NodeWeight(u)
	s.res[from] -= w
	s.res[to] += w
	s.cnt[from]--
	s.cnt[to]++
	s.parts[u] = to
}

// RepairBandwidth greedily moves boundary nodes between parts to drive
// every pairwise bandwidth under c.Bmax, while respecting c.Rmax on the
// destination part when possible (the paper's FM-based bandwidth-repair
// step of §IV-B/§IV-C: "Partitions will be changed and nodes will move
// between partitions as far as constraints met"). Each pass considers all
// nodes incident to an over-budget pair and applies the move with the best
// (excess reduction, cut reduction) lexicographic gain; a node moves at
// most once per pass. Stops when feasible, when a pass makes no progress,
// or after maxPasses (default 16).
func RepairBandwidth(g *graph.Graph, parts []int, k int, c metrics.Constraints, maxPasses int) BandwidthStats {
	if maxPasses <= 0 {
		maxPasses = 16
	}
	st := BandwidthStats{}
	if c.Bmax <= 0 {
		st.Feasible = true
		return st
	}
	s := newBWState(g, parts, k)
	st.ExcessBefore = s.excess(c.Bmax)
	st.ExcessAfter = st.ExcessBefore
	if st.ExcessBefore == 0 {
		st.Feasible = true
		return st
	}
	n := g.NumNodes()
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		moved := make([]bool, n)
		progressed := false
		for {
			// Collect nodes incident to violating pairs.
			var bestU graph.Node = -1
			bestTo := -1
			var bestExcess, bestCut int64
			for u := 0; u < n; u++ {
				if moved[u] {
					continue
				}
				un := graph.Node(u)
				from := s.parts[u]
				if s.cnt[from] == 1 {
					continue
				}
				// Is u on a violating pair's boundary?
				touches := false
				for _, h := range g.Neighbors(un) {
					p := s.parts[h.To]
					if p != from && s.bw[from][p] > c.Bmax {
						touches = true
						break
					}
				}
				if !touches {
					continue
				}
				w := g.NodeWeight(un)
				for to := 0; to < k; to++ {
					if to == from {
						continue
					}
					if c.Rmax > 0 && s.res[to]+w > c.Rmax {
						continue
					}
					ed, cd := s.moveDelta(un, to, c.Bmax)
					if ed < bestExcess || (ed == bestExcess && ed < 0 && cd < bestCut) {
						bestU, bestTo, bestExcess, bestCut = un, to, ed, cd
					}
				}
			}
			if bestU < 0 || bestExcess >= 0 {
				break
			}
			s.apply(bestU, bestTo)
			moved[bestU] = true
			st.Moves++
			progressed = true
			st.ExcessAfter += bestExcess
			if st.ExcessAfter == 0 {
				st.Feasible = true
				return st
			}
		}
		if !progressed {
			break
		}
	}
	st.ExcessAfter = s.excess(c.Bmax)
	st.Feasible = st.ExcessAfter == 0
	return st
}

// RebalanceResources moves nodes out of parts whose resource total
// exceeds rmax into the part with the most free space, preferring moves
// that increase the cut least. It is the repair used after the greedy
// initial partitioning when forced placement overfilled a part. Stops
// when all parts fit, when stuck, or after maxPasses (default 16).
// Returns the number of moves applied and whether all parts now fit.
func RebalanceResources(g *graph.Graph, parts []int, k int, rmax int64, maxPasses int) (int, bool) {
	if rmax <= 0 {
		return 0, true
	}
	if maxPasses <= 0 {
		maxPasses = 16
	}
	res := metrics.PartResources(g, parts, k)
	cnt := metrics.PartSizes(parts, k)
	fits := func() bool {
		for _, r := range res {
			if r > rmax {
				return false
			}
		}
		return true
	}
	moves := 0
	n := g.NumNodes()
	conn := make([]int64, k)
	for pass := 0; pass < maxPasses && !fits(); pass++ {
		progressed := false
		for u := 0; u < n && !fits(); u++ {
			un := graph.Node(u)
			from := parts[u]
			if res[from] <= rmax || cnt[from] == 1 {
				continue
			}
			w := g.NodeWeight(un)
			for i := range conn {
				conn[i] = 0
			}
			for _, h := range g.Neighbors(un) {
				conn[parts[h.To]] += h.Weight
			}
			// Choose the destination that fits and costs the least cut,
			// breaking ties toward the most free space.
			bestTo := -1
			var bestCost int64
			var bestFree int64
			for to := 0; to < k; to++ {
				if to == from || res[to]+w > rmax {
					continue
				}
				cost := conn[from] - conn[to]
				free := rmax - (res[to] + w)
				if bestTo < 0 || cost < bestCost || (cost == bestCost && free > bestFree) {
					bestTo, bestCost, bestFree = to, cost, free
				}
			}
			if bestTo < 0 {
				continue
			}
			parts[u] = bestTo
			res[from] -= w
			res[bestTo] += w
			cnt[from]--
			cnt[bestTo]++
			moves++
			progressed = true
		}
		if !progressed {
			break
		}
	}
	return moves, fits()
}
