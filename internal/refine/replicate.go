package refine

import (
	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/pstate"
)

// Logic replication (the RePart lever): after refinement settles an
// assignment, clone a producer node into a second partition when the
// resource headroom exists and the goodness function strictly improves —
// a copy of the producer next to its consumers deletes cut edges and
// stops the hyperedge stream forwarding to that partition outright,
// something no single-copy move can achieve. The pass is greedy steepest:
// each round trials every candidate (node, part) pair with an exact
// Replicate → Score → Undo probe on the incremental state and commits the
// best strict improvement; candidate order is ascending (node, part) and
// ties keep the first seen, so the result is deterministic for a fixed
// input regardless of pool width.

// ReplicateOptions configures the replication pass.
type ReplicateOptions struct {
	// MaxClones bounds the number of replicas created (default 32 —
	// replication buys its cut savings with silicon, so the budget stays
	// small like RePart's).
	MaxClones int
}

func (o ReplicateOptions) withDefaults() ReplicateOptions {
	if o.MaxClones <= 0 {
		o.MaxClones = 32
	}
	return o
}

// ReplicateStats reports what the replication pass achieved.
type ReplicateStats struct {
	// Clones is the number of replicas committed.
	Clones int
	// Trials is the number of candidate probes evaluated.
	Trials int
	// ScoreBefore and ScoreAfter bracket the extended goodness score;
	// the pass guarantees ScoreAfter <= ScoreBefore.
	ScoreBefore, ScoreAfter float64
	// ObjectiveBefore and ObjectiveAfter bracket cut + hyperedge
	// connectivity cost.
	ObjectiveBefore, ObjectiveAfter int64
}

// Improved reports whether any replica was committed.
func (s ReplicateStats) Improved() bool { return s.Clones > 0 }

// ReplicateWS runs the replication pass over a settled assignment. The
// assignment itself is never changed — replication is an overlay — and
// the returned vector maps each node to its replica part (-1 = none).
// cfg carries the constraint set; a clone that would breach it inflates
// the score's dominant penalty and is therefore never committed.
func ReplicateWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, cfg pstate.Config, opts ReplicateOptions) ([]int, ReplicateStats, error) {
	opts = opts.withDefaults()
	st := ReplicateStats{}
	s, err := pstate.NewWS(ws, csr, parts, cfg)
	if err != nil {
		return nil, st, err
	}
	defer s.Release(ws)
	st.ScoreBefore = s.Score()
	st.ScoreAfter = st.ScoreBefore
	st.ObjectiveBefore = s.Objective()
	st.ObjectiveAfter = st.ObjectiveBefore
	n := csr.NumNodes()
	replicas := make([]int, n)
	for i := range replicas {
		replicas[i] = -1
	}
	if k < 2 || n == 0 {
		return replicas, st, nil
	}

	cand := ws.Bools.Get(k) // candidate destination parts of the node in hand
	defer ws.Bools.Put(cand)
	cur := st.ScoreBefore
	for st.Clones < opts.MaxClones {
		var bestU graph.Node = -1
		bestP := -1
		bestScore := cur
		for u := 0; u < n; u++ {
			un := graph.Node(u)
			if s.Replica(un) >= 0 {
				continue // one replica per node
			}
			from := s.Part(un)
			clear(cand)
			// A copy of u helps a part that receives u's traffic without
			// holding u: the far side of each cut edge, and every part
			// still needing the stream of a net u writes.
			found := false
			adj, _ := csr.Row(un)
			for _, v := range adj {
				if pv := s.Part(v); pv != from && !cand[pv] {
					cand[pv] = true
					found = true
				}
				if rv := s.Replica(v); rv >= 0 && rv != from && !cand[rv] {
					cand[rv] = true
					found = true
				}
			}
			for _, e := range csr.IncidentHyper(un) {
				pins := csr.HyperPins(e)
				if pins[0] != un {
					continue // cloning a reader never deletes forwarding
				}
				for _, r := range pins[1:] {
					if pr := s.Part(r); pr != from && !cand[pr] {
						cand[pr] = true
						found = true
					}
					if rr := s.Replica(r); rr >= 0 && rr != from && !cand[rr] {
						cand[rr] = true
						found = true
					}
				}
			}
			if !found {
				continue
			}
			for p := 0; p < k; p++ {
				if !cand[p] {
					continue
				}
				if lim := cfg.Constraints.RmaxFor(p); lim > 0 && s.Resource(p)+csr.NodeW[u] > lim {
					continue // no headroom: the clone could only worsen the score
				}
				st.Trials++
				s.Replicate(un, p)
				sc := s.Score()
				s.Undo()
				if sc < bestScore {
					bestScore, bestU, bestP = sc, un, p
				}
			}
		}
		if bestU < 0 {
			break // no strict improvement left
		}
		s.Replicate(bestU, bestP)
		cur = bestScore
		st.Clones++
	}
	if reps := s.Replicas(); reps != nil {
		copy(replicas, reps)
	}
	st.ScoreAfter = cur
	st.ObjectiveAfter = s.Objective()
	return replicas, st, nil
}

// Replicate is ReplicateWS with a workspace drawn from the shared pool.
func Replicate(g *graph.Graph, parts []int, k int, cfg pstate.Config, opts ReplicateOptions) ([]int, ReplicateStats, error) {
	ws := arena.Get()
	defer arena.Put(ws)
	return ReplicateWS(ws, g.ToCSR(), parts, k, cfg, opts)
}
