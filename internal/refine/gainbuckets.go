package refine

import (
	"math/bits"
	"sort"
)

// gainBuckets is the batch sweep's incremental candidate ranking. The
// gainPQ note above explains why classic FM bucket arrays don't fit
// arbitrary int64 bandwidth gains directly — one bucket per gain value
// needs a small integer domain. This structure quantizes instead: bucket
// b holds the candidates whose gain g has bits.Len64(g) == b, i.e.
// g in [2^(b-1), 2^b). Batch candidates always have strictly positive
// gain, so b ranges over 1..64 and the bucket gain ranges are disjoint
// and ordered. Scanning buckets high to low and ordering each bucket by
// (gain desc, node asc) therefore visits candidates in exactly the
// global (gain desc, node asc) order the previous per-round sort.Slice
// produced — the equivalence test in gainbuckets_test.go pins this,
// including ties.
//
// The win over re-sorting is incrementality: between rounds only the
// dirty set (the moved nodes and their neighborhoods) is re-bucketed,
// and only buckets that actually changed are lazily re-sorted — and only
// when the selection scan reaches them. Steady-state rounds touch a few
// small buckets instead of sorting the full candidate list.
type gainBuckets struct {
	lists [65][]int // lists[b]: candidate nodes with bits.Len64(gain) == b
	dirty [65]bool  // bucket order invalidated since its last sort
	bkt   []int8    // node -> bucket id, 0 when absent
	pos   []int32   // node -> index in lists[bkt[node]]
	g     []int64   // node -> gain at insertion (ordering key + change check)
	count int       // live candidates across all buckets
	hi    int       // upper bound on the highest non-empty bucket
}

// reset prepares the structure for a pass over n nodes, clearing any
// state left by a previous pass.
func (gb *gainBuckets) reset(n int) {
	if cap(gb.bkt) < n {
		gb.bkt = make([]int8, n)
		gb.pos = make([]int32, n)
		gb.g = make([]int64, n)
	}
	gb.bkt = gb.bkt[:n]
	gb.pos = gb.pos[:n]
	gb.g = gb.g[:n]
	for i := range gb.bkt {
		gb.bkt[i] = 0
	}
	for b := range gb.lists {
		gb.lists[b] = gb.lists[b][:0]
		gb.dirty[b] = false
	}
	gb.count = 0
	gb.hi = 0
}

// set inserts node u with the given strictly positive gain, or updates
// it if already present.
func (gb *gainBuckets) set(u int, gain int64) {
	b := int(bits.Len64(uint64(gain)))
	old := int(gb.bkt[u])
	if old == b {
		if gb.g[u] != gain {
			gb.g[u] = gain
			gb.dirty[b] = true
		}
		return
	}
	if old != 0 {
		gb.removeFrom(u, old)
	} else {
		gb.count++
	}
	gb.g[u] = gain
	gb.bkt[u] = int8(b)
	gb.pos[u] = int32(len(gb.lists[b]))
	gb.lists[b] = append(gb.lists[b], u)
	gb.dirty[b] = true
	if b > gb.hi {
		gb.hi = b
	}
}

// remove deletes node u if present.
func (gb *gainBuckets) remove(u int) {
	b := int(gb.bkt[u])
	if b == 0 {
		return
	}
	gb.removeFrom(u, b)
	gb.bkt[u] = 0
	gb.count--
}

// removeFrom swap-deletes u from bucket b's list.
func (gb *gainBuckets) removeFrom(u, b int) {
	lst := gb.lists[b]
	i := int(gb.pos[u])
	last := len(lst) - 1
	if i != last {
		lst[i] = lst[last]
		gb.pos[lst[i]] = int32(i)
		// The swapped-in tail breaks the sorted order.
		gb.dirty[b] = true
	}
	gb.lists[b] = lst[:last]
}

// scan visits every live candidate in (gain desc, node asc) order.
// Dirty buckets are sorted on first touch; the structure must not be
// mutated during the scan.
func (gb *gainBuckets) scan(visit func(u int)) {
	for b := gb.hi; b >= 1; b-- {
		lst := gb.lists[b]
		if len(lst) == 0 {
			if b == gb.hi {
				gb.hi--
			}
			continue
		}
		if gb.dirty[b] {
			sort.Slice(lst, func(i, j int) bool {
				if gb.g[lst[i]] != gb.g[lst[j]] {
					return gb.g[lst[i]] > gb.g[lst[j]]
				}
				return lst[i] < lst[j]
			})
			for i, u := range lst {
				gb.pos[u] = int32(i)
			}
			gb.dirty[b] = false
		}
		for _, u := range lst {
			visit(u)
		}
	}
}
