package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

func TestTabuSearchImprovesInterleavedClusters(t *testing.T) {
	g := twoClusters(8)
	parts := make([]int, g.NumNodes())
	for i := range parts {
		parts[i] = i % 2
	}
	st, feasible := TabuSearch(g, parts, 2, metrics.Constraints{}, TabuOptions{})
	if !feasible {
		t.Fatal("unconstrained run must end feasible")
	}
	if st.CutAfter >= st.CutBefore {
		t.Fatalf("tabu did not improve: %d -> %d", st.CutBefore, st.CutAfter)
	}
	// Tabu escapes FM's 15/1 trap because nodes can move repeatedly;
	// with cluster structure it should reach the bridge cut.
	if st.CutAfter != 1 {
		t.Fatalf("tabu cut = %d, want 1", st.CutAfter)
	}
}

func TestTabuSearchRepairsConstraints(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 8; trial++ {
		g := randomConnected(rng, 40)
		k := 4
		parts := make([]int, 40)
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		c := metrics.Constraints{
			Bmax: 2 * g.TotalEdgeWeight() / int64(k),
			Rmax: g.TotalNodeWeight()/int64(k) + g.MaxNodeWeight()*2,
		}
		_, feasible := TabuSearch(g, parts, k, c, TabuOptions{})
		if err := metrics.Validate(g, parts, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if feasible != metrics.Feasible(g, parts, k, c) {
			t.Fatalf("trial %d: feasibility flag disagrees with metrics", trial)
		}
		if !feasible {
			t.Fatalf("trial %d: tabu failed to reach feasibility under loose constraints", trial)
		}
	}
}

func TestTabuSearchNeverWorsensObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 30)
		k := 3
		parts := make([]int, 30)
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		c := metrics.Constraints{Bmax: g.TotalEdgeWeight() / 2, Rmax: g.TotalNodeWeight()}
		before := metrics.Goodness(g, parts, k, c)
		TabuSearch(g, parts, k, c, TabuOptions{Iterations: 500})
		after := metrics.Goodness(g, parts, k, c)
		if after > before {
			t.Fatalf("trial %d: tabu worsened goodness %v -> %v", trial, before, after)
		}
	}
}

func TestAnnealImprovesInterleavedClusters(t *testing.T) {
	g := twoClusters(6)
	parts := make([]int, g.NumNodes())
	for i := range parts {
		parts[i] = i % 2
	}
	rng := rand.New(rand.NewSource(3))
	st, feasible := Anneal(g, parts, 2, metrics.Constraints{}, AnnealOptions{}, rng)
	if !feasible {
		t.Fatal("unconstrained run must end feasible")
	}
	if st.CutAfter >= st.CutBefore {
		t.Fatalf("anneal did not improve: %d -> %d", st.CutBefore, st.CutAfter)
	}
}

func TestAnnealNeverWorsensBest(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 24)
		k := 3
		parts := make([]int, 24)
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		c := metrics.Constraints{Bmax: g.TotalEdgeWeight(), Rmax: g.TotalNodeWeight()}
		before := metrics.Goodness(g, parts, k, c)
		Anneal(g, parts, k, c, AnnealOptions{Iterations: 2000}, rng)
		after := metrics.Goodness(g, parts, k, c)
		// Best-state restoration guarantees no regression.
		if after > before {
			t.Fatalf("trial %d: anneal worsened goodness %v -> %v", trial, before, after)
		}
		if err := metrics.Validate(g, parts, k); err != nil {
			t.Fatal(err)
		}
	}
}

func TestAnnealDeterministicForSeed(t *testing.T) {
	g := randomConnected(rand.New(rand.NewSource(5)), 30)
	base := make([]int, 30)
	for i := range base {
		base[i] = i % 3
	}
	p1 := append([]int(nil), base...)
	p2 := append([]int(nil), base...)
	Anneal(g, p1, 3, metrics.Constraints{}, AnnealOptions{}, rand.New(rand.NewSource(9)))
	Anneal(g, p2, 3, metrics.Constraints{}, AnnealOptions{}, rand.New(rand.NewSource(9)))
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed produced different anneal results")
		}
	}
}

func TestAnnealDegenerateInputs(t *testing.T) {
	g := graph.New(0)
	st, feasible := Anneal(g, nil, 1, metrics.Constraints{}, AnnealOptions{}, rand.New(rand.NewSource(1)))
	if !feasible || st.Moves != 0 {
		t.Fatal("empty graph should be a feasible no-op")
	}
	g2 := graph.New(3)
	parts := []int{0, 0, 0}
	_, ok := Anneal(g2, parts, 1, metrics.Constraints{}, AnnealOptions{}, rand.New(rand.NewSource(1)))
	if !ok {
		t.Fatal("k=1 unconstrained should be feasible")
	}
}

func TestObjectiveOrdering(t *testing.T) {
	// Any state with excess must score worse than any state without.
	p := int64(1001) // penalty for a graph with total edge weight 1000
	feasibleHighCut := objective(1000, 0, p)
	infeasibleLowCut := objective(0, 1, p)
	if infeasibleLowCut <= feasibleHighCut {
		t.Fatal("penalty too weak: infeasible state preferred")
	}
}

func TestPropertyTabuAndAnnealPreserveValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 10+rng.Intn(30))
		k := 2 + rng.Intn(3)
		parts := make([]int, g.NumNodes())
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		c := metrics.Constraints{
			Bmax: int64(1 + rng.Intn(int(g.TotalEdgeWeight())+1)),
			Rmax: g.TotalNodeWeight()/int64(k) + int64(rng.Intn(50)),
		}
		pt := append([]int(nil), parts...)
		TabuSearch(g, pt, k, c, TabuOptions{Iterations: 200})
		if metrics.Validate(g, pt, k) != nil {
			return false
		}
		pa := append([]int(nil), parts...)
		Anneal(g, pa, k, c, AnnealOptions{Iterations: 500}, rng)
		return metrics.Validate(g, pa, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
