package refine

import (
	"math/rand"
	"sort"
	"testing"

	"ppnpart/internal/graph"
)

func TestGainPQBasicOrdering(t *testing.T) {
	pq := newGainPQ(5)
	pq.Push(0, 10)
	pq.Push(1, 30)
	pq.Push(2, 20)
	if pq.Len() != 3 {
		t.Fatalf("Len = %d", pq.Len())
	}
	u, g := pq.Peek()
	if u != 1 || g != 30 {
		t.Fatalf("Peek = %d/%d, want 1/30", u, g)
	}
	u, g = pq.Pop()
	if u != 1 || g != 30 {
		t.Fatalf("Pop = %d/%d", u, g)
	}
	u, _ = pq.Pop()
	if u != 2 {
		t.Fatalf("second Pop = %d, want 2", u)
	}
	u, _ = pq.Pop()
	if u != 0 {
		t.Fatalf("third Pop = %d, want 0", u)
	}
	if pq.Len() != 0 {
		t.Fatal("queue should be empty")
	}
}

func TestGainPQTieBreaksByLowerID(t *testing.T) {
	pq := newGainPQ(4)
	pq.Push(3, 7)
	pq.Push(1, 7)
	pq.Push(2, 7)
	u, _ := pq.Pop()
	if u != 1 {
		t.Fatalf("tie Pop = %d, want lowest id 1", u)
	}
}

func TestGainPQUpdateAndAdjust(t *testing.T) {
	pq := newGainPQ(4)
	pq.Push(0, 1)
	pq.Push(1, 2)
	pq.Update(0, 100)
	if u, g := pq.Peek(); u != 0 || g != 100 {
		t.Fatalf("after Update Peek = %d/%d", u, g)
	}
	pq.Adjust(1, 200) // 2 + 200 = 202
	if u, g := pq.Peek(); u != 1 || g != 202 {
		t.Fatalf("after Adjust Peek = %d/%d", u, g)
	}
	pq.Adjust(3, 50) // absent: no-op
	if pq.Contains(3) {
		t.Fatal("Adjust inserted absent node")
	}
	pq.Update(3, 5) // absent: inserts
	if !pq.Contains(3) || pq.Gain(3) != 5 {
		t.Fatal("Update on absent node should insert")
	}
	pq.Push(1, 1) // present: updates key downward
	if pq.Gain(1) != 1 {
		t.Fatal("Push on present node should update")
	}
}

func TestGainPQRemove(t *testing.T) {
	pq := newGainPQ(5)
	for i := 0; i < 5; i++ {
		pq.Push(graph.Node(i), int64(i))
	}
	pq.Remove(4) // max
	if u, _ := pq.Peek(); u != 3 {
		t.Fatalf("after removing max, Peek = %d, want 3", u)
	}
	pq.Remove(0)
	pq.Remove(0) // double remove is a no-op
	if pq.Len() != 3 {
		t.Fatalf("Len = %d, want 3", pq.Len())
	}
}

func TestGainPQRandomizedAgainstSort(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(200)
		pq := newGainPQ(n)
		gains := make([]int64, n)
		for i := 0; i < n; i++ {
			gains[i] = int64(rng.Intn(1000) - 500)
			pq.Push(graph.Node(i), gains[i])
		}
		// Random updates.
		for j := 0; j < n/2; j++ {
			u := rng.Intn(n)
			gains[u] = int64(rng.Intn(1000) - 500)
			pq.Update(graph.Node(u), gains[u])
		}
		// Drain and compare with sorted order.
		type kv struct {
			id   int
			gain int64
		}
		want := make([]kv, n)
		for i := range want {
			want[i] = kv{i, gains[i]}
		}
		sort.Slice(want, func(a, b int) bool {
			if want[a].gain != want[b].gain {
				return want[a].gain > want[b].gain
			}
			return want[a].id < want[b].id
		})
		for i := 0; i < n; i++ {
			u, g := pq.Pop()
			if int(u) != want[i].id || g != want[i].gain {
				t.Fatalf("trial %d drain[%d] = %d/%d, want %d/%d",
					trial, i, u, g, want[i].id, want[i].gain)
			}
		}
	}
}
