package refine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// twoClusters builds two dense clusters of size sz joined by one light
// bridge; the optimal bisection separates the clusters.
func twoClusters(sz int) *graph.Graph {
	g := graph.New(2 * sz)
	for c := 0; c < 2; c++ {
		base := c * sz
		for i := 0; i < sz; i++ {
			for j := i + 1; j < sz; j++ {
				g.MustAddEdge(graph.Node(base+i), graph.Node(base+j), 10)
			}
		}
	}
	g.MustAddEdge(0, graph.Node(sz), 1)
	return g
}

func randomConnected(rng *rand.Rand, n int) *graph.Graph {
	w := make([]int64, n)
	for i := range w {
		w[i] = int64(1 + rng.Intn(20))
	}
	g := graph.NewWithWeights(w)
	for i := 1; i < n; i++ {
		g.MustAddEdge(graph.Node(i-1), graph.Node(i), int64(1+rng.Intn(15)))
	}
	for i := 0; i < 2*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u != v {
			g.MustAddEdge(graph.Node(u), graph.Node(v), int64(1+rng.Intn(15)))
		}
	}
	return g
}

func TestFMBisectFindsClusterSplit(t *testing.T) {
	g := twoClusters(8)
	// Adversarial start: interleaved assignment. FM runs with a slack-1
	// balance bound, the configuration the multilevel driver always uses;
	// unbounded FM is known to collapse to a near-empty side and stall
	// (the original motivation for FM's balance criterion).
	parts := make([]int, g.NumNodes())
	for i := range parts {
		parts[i] = i % 2
	}
	st := FMBisect(g, parts, 9, 0)
	if st.CutAfter != 1 {
		t.Fatalf("cut after FM = %d, want 1 (bridge only); stats %+v", st.CutAfter, st)
	}
	if !st.Improved() {
		t.Fatal("FM should report improvement")
	}
	if got := metrics.EdgeCut(g, parts); got != st.CutAfter {
		t.Fatalf("reported cut %d != recomputed %d", st.CutAfter, got)
	}
	sizes := metrics.PartSizes(parts, 2)
	if sizes[0] != 8 || sizes[1] != 8 {
		t.Fatalf("balance bound violated: %v", sizes)
	}
}

func TestFMBisectRespectsResourceBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 40)
		parts := make([]int, 40)
		for i := range parts {
			parts[i] = rng.Intn(2)
		}
		// Bound at current max side so FM may move but never overflow.
		r := metrics.PartResources(g, parts, 2)
		rmax := r[0]
		if r[1] > rmax {
			rmax = r[1]
		}
		FMBisect(g, parts, rmax, 0)
		after := metrics.PartResources(g, parts, 2)
		if after[0] > rmax || after[1] > rmax {
			t.Fatalf("trial %d: FM overflowed resource bound %d: %v", trial, rmax, after)
		}
	}
}

func TestFMBisectNeverEmptiesASide(t *testing.T) {
	g := graph.New(3)
	g.MustAddEdge(0, 1, 100)
	g.MustAddEdge(1, 2, 100)
	parts := []int{0, 1, 1}
	// Merging everything into one side would zero the cut, but a bisection
	// must keep both sides non-empty.
	FMBisect(g, parts, 0, 0)
	sizes := metrics.PartSizes(parts, 2)
	if sizes[0] == 0 || sizes[1] == 0 {
		t.Fatalf("FM emptied a side: %v", sizes)
	}
}

func TestFMBisectNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 30+rng.Intn(40))
		parts := make([]int, g.NumNodes())
		for i := range parts {
			parts[i] = rng.Intn(2)
		}
		before := metrics.EdgeCut(g, parts)
		st := FMBisect(g, parts, 0, 0)
		after := metrics.EdgeCut(g, parts)
		if after > before {
			t.Fatalf("trial %d: FM worsened cut %d -> %d", trial, before, after)
		}
		if st.CutBefore != before || st.CutAfter != after {
			t.Fatalf("trial %d: stats mismatch %+v vs %d->%d", trial, st, before, after)
		}
	}
}

func TestKWayFMImprovesAndRespectsBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 15; trial++ {
		g := randomConnected(rng, 60)
		k := 2 + rng.Intn(4)
		parts := make([]int, 60)
		for i := range parts {
			parts[i] = rng.Intn(k)
		}
		before := metrics.EdgeCut(g, parts)
		res := metrics.PartResources(g, parts, k)
		var rmax int64
		for _, r := range res {
			if r > rmax {
				rmax = r
			}
		}
		st := KWayFM(g, parts, k, rmax, 0)
		after := metrics.EdgeCut(g, parts)
		if after > before {
			t.Fatalf("trial %d: k-way FM worsened cut", trial)
		}
		if st.CutAfter != after {
			t.Fatalf("trial %d: stats cut mismatch", trial)
		}
		for i, r := range metrics.PartResources(g, parts, k) {
			if r > rmax {
				t.Fatalf("trial %d: part %d overflowed: %d > %d", trial, i, r, rmax)
			}
		}
		if err := metrics.Validate(g, parts, k); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestKWayFMKeepsPartsNonEmpty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randomConnected(rng, 30)
	k := 5
	parts := make([]int, 30)
	for i := range parts {
		parts[i] = i % k
	}
	KWayFM(g, parts, k, 0, 0)
	for p, s := range metrics.PartSizes(parts, k) {
		if s == 0 {
			t.Fatalf("part %d emptied", p)
		}
	}
}

func TestKernighanLinImprovesInterleavedClusters(t *testing.T) {
	g := twoClusters(6)
	parts := make([]int, g.NumNodes())
	for i := range parts {
		parts[i] = i % 2
	}
	before := metrics.EdgeCut(g, parts)
	st := KernighanLin(g, parts, 0)
	after := metrics.EdgeCut(g, parts)
	if after >= before {
		t.Fatalf("KL did not improve: %d -> %d", before, after)
	}
	if after != 1 {
		t.Fatalf("KL cut = %d, want 1", after)
	}
	if st.CutAfter != after {
		t.Fatal("KL stats mismatch")
	}
	// KL preserves exact side sizes.
	sizes := metrics.PartSizes(parts, 2)
	if sizes[0] != sizes[1] {
		t.Fatalf("KL changed side sizes: %v", sizes)
	}
}

func TestKernighanLinNeverWorsens(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		g := randomConnected(rng, 24)
		parts := make([]int, 24)
		for i := range parts {
			parts[i] = i % 2
		}
		before := metrics.EdgeCut(g, parts)
		KernighanLin(g, parts, 0)
		after := metrics.EdgeCut(g, parts)
		if after > before {
			t.Fatalf("trial %d: KL worsened %d -> %d", trial, before, after)
		}
	}
}

func TestPropertyFMPreservesAssignmentValidity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomConnected(rng, 10+rng.Intn(50))
		parts := make([]int, g.NumNodes())
		for i := range parts {
			parts[i] = rng.Intn(2)
		}
		FMBisect(g, parts, 0, 3)
		if metrics.Validate(g, parts, 2) != nil {
			return false
		}
		k := 2 + rng.Intn(4)
		kparts := make([]int, g.NumNodes())
		for i := range kparts {
			kparts[i] = rng.Intn(k)
		}
		KWayFM(g, kparts, k, 0, 3)
		return metrics.Validate(g, kparts, k) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFMAtLeastAsGoodAsKLOnBalancedStarts(t *testing.T) {
	// Not a strict theorem, but FM with hill-climbing and rollback should
	// rarely lose to a plain greedy on the same instance; we assert the
	// aggregate over several seeds to avoid flakes from individual cases.
	rng := rand.New(rand.NewSource(99))
	var fmTotal, klTotal int64
	for trial := 0; trial < 20; trial++ {
		g := randomConnected(rng, 26)
		base := make([]int, 26)
		for i := range base {
			base[i] = i % 2
		}
		pf := append([]int(nil), base...)
		pk := append([]int(nil), base...)
		FMBisect(g, pf, 0, 0)
		KernighanLin(g, pk, 0)
		fmTotal += metrics.EdgeCut(g, pf)
		klTotal += metrics.EdgeCut(g, pk)
	}
	if fmTotal > klTotal*11/10 {
		t.Fatalf("FM aggregate cut %d much worse than KL %d", fmTotal, klTotal)
	}
}
