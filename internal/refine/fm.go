package refine

import (
	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// Stats summarizes what a refinement pass achieved.
type Stats struct {
	// Passes is the number of full passes executed.
	Passes int
	// Moves is the number of node moves kept (after rollback).
	Moves int
	// CutBefore and CutAfter bracket the global edge cut.
	CutBefore, CutAfter int64
}

// Improved reports whether the refinement reduced the cut.
func (s Stats) Improved() bool { return s.CutAfter < s.CutBefore }

// FMBisect runs Fiduccia–Mattheyses passes on a 2-way partition
// (parts[u] ∈ {0,1}), mutating parts in place. Each pass moves every node
// at most once, always taking the highest-gain admissible move, allowing
// negative-gain moves (hill climbing), and finally rolls back to the best
// prefix seen. maxResource bounds the node-weight total of each side
// (<= 0: the only bound is that no side may be emptied); maxPasses <= 0
// defaults to 8. Terminates when a pass yields no improvement.
func FMBisect(g *graph.Graph, parts []int, maxResource int64, maxPasses int) Stats {
	ws := arena.Get()
	defer arena.Put(ws)
	return FMBisectWS(ws, g.ToCSR(), parts, maxResource, maxPasses)
}

// FMBisectWS is FMBisect on a prebuilt CSR snapshot with the per-pass
// gain and lock tables drawn from ws.
func FMBisectWS(ws *arena.Workspace, csr *graph.CSR, parts []int, maxResource int64, maxPasses int) Stats {
	if maxPasses <= 0 {
		maxPasses = 8
	}
	st := Stats{CutBefore: csrEdgeCut(csr, parts)}
	cur := st.CutBefore
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		improved, newCut, kept := fmBisectPass(ws, csr, parts, maxResource, cur)
		cur = newCut
		st.Moves += kept
		if !improved {
			break
		}
	}
	st.CutAfter = cur
	return st
}

// fmBisectPass runs one FM pass. Returns (improved, cut after rollback,
// moves kept).
func fmBisectPass(ws *arena.Workspace, csr *graph.CSR, parts []int, maxResource int64, startCut int64) (bool, int64, int) {
	n := csr.NumNodes()
	// Side resource totals.
	var res [2]int64
	var cnt [2]int
	for u := 0; u < n; u++ {
		res[parts[u]] += csr.NodeW[u]
		cnt[parts[u]]++
	}
	// gain(u) = external(u) - internal(u): cut reduction if u switches side.
	pq := newGainPQ(n)
	gains := ws.Int64s.Get(n)
	defer ws.Int64s.Put(gains)
	for u := 0; u < n; u++ {
		var ext, int_ int64
		adj, wts := csr.Row(graph.Node(u))
		for i, v := range adj {
			if parts[v] == parts[u] {
				int_ += wts[i]
			} else {
				ext += wts[i]
			}
		}
		gains[u] = ext - int_
		pq.Push(graph.Node(u), gains[u])
	}
	locked := ws.Bools.Get(n)
	defer ws.Bools.Put(locked)
	type move struct {
		node graph.Node
		from int
	}
	var seq []move
	cut := startCut
	bestCut := startCut
	bestLen := 0

	for pq.Len() > 0 {
		// Find the best admissible move: highest gain whose move does not
		// overflow the destination or empty the source.
		var chosen graph.Node = -1
		var skipped []graph.Node
		for pq.Len() > 0 {
			u, _ := pq.Pop()
			from := parts[u]
			to := 1 - from
			w := csr.NodeW[u]
			overflow := maxResource > 0 && res[to]+w > maxResource
			empties := cnt[from] == 1
			if overflow || empties {
				skipped = append(skipped, u)
				continue
			}
			chosen = u
			break
		}
		// Skipped nodes stay candidates for later (resources shift).
		for _, s := range skipped {
			pq.Push(s, gains[s])
		}
		if chosen < 0 {
			break
		}
		u := chosen
		from := parts[u]
		to := 1 - from
		cut -= gains[u]
		parts[u] = to
		res[from] -= csr.NodeW[u]
		res[to] += csr.NodeW[u]
		cnt[from]--
		cnt[to]++
		locked[u] = true
		seq = append(seq, move{u, from})
		// Update neighbor gains: for neighbor v on side s, edge {u,v}
		// changed from internal↔external.
		adj, wts := csr.Row(u)
		for i, v := range adj {
			if locked[v] {
				continue
			}
			var delta int64
			if parts[v] == to {
				// Edge was external to v (u was opposite), now internal.
				delta = -2 * wts[i]
			} else {
				// Edge was internal to v's side? v is on `from`; u left it.
				delta = 2 * wts[i]
			}
			gains[v] += delta
			pq.Adjust(v, delta)
		}
		if cut < bestCut {
			bestCut = cut
			bestLen = len(seq)
		}
	}
	// Roll back to the best prefix.
	for i := len(seq) - 1; i >= bestLen; i-- {
		parts[seq[i].node] = seq[i].from
	}
	return bestCut < startCut, bestCut, bestLen
}

// KWayFM runs greedy k-way FM refinement: repeated passes over boundary
// nodes, each pass moving nodes (at most once each) to the neighbor part
// with the best positive gain, subject to the resource bound. Unlike
// 2-way FM it does not hill-climb — this mirrors the coarse-grained
// k-way refinement used in multilevel k-way partitioners. maxResource
// <= 0 disables the bound; maxPasses <= 0 defaults to 8.
func KWayFM(g *graph.Graph, parts []int, k int, maxResource int64, maxPasses int) Stats {
	ws := arena.Get()
	defer arena.Put(ws)
	return KWayFMWS(ws, g.ToCSR(), parts, k, maxResource, maxPasses)
}

// KWayFMWS is KWayFM on a prebuilt CSR snapshot with the per-part totals
// and connectivity scratch drawn from ws. The cut is tracked
// incrementally from the applied gains, so the only full adjacency sweep
// is the initial cut count.
func KWayFMWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, maxResource int64, maxPasses int) Stats {
	lims := ws.Int64s.Get(k)
	defer ws.Int64s.Put(lims)
	for p := range lims {
		lims[p] = maxResource
	}
	return kwayFMLims(ws, csr, parts, k, lims, maxPasses)
}

// KWayFMCapsWS is KWayFMWS under heterogeneous per-part resource bounds:
// the destination check uses c.RmaxFor(to), so a big part can absorb
// nodes a small one cannot. With a nil RmaxPart it is exactly KWayFMWS.
func KWayFMCapsWS(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, c metrics.Constraints, maxPasses int) Stats {
	lims := ws.Int64s.Get(k)
	defer ws.Int64s.Put(lims)
	for p := range lims {
		lims[p] = c.RmaxFor(p)
	}
	return kwayFMLims(ws, csr, parts, k, lims, maxPasses)
}

// kwayFMLims is the shared k-way FM implementation; lims[p] bounds part
// p's resource total (<= 0 = unbounded).
func kwayFMLims(ws *arena.Workspace, csr *graph.CSR, parts []int, k int, lims []int64, maxPasses int) Stats {
	if maxPasses <= 0 {
		maxPasses = 8
	}
	st := Stats{CutBefore: csrEdgeCut(csr, parts)}
	cut := st.CutBefore
	n := csr.NumNodes()
	res := ws.Int64s.Get(k)
	cnt := ws.Ints.Get(k)
	defer func() {
		ws.Int64s.Put(res)
		ws.Ints.Put(cnt)
	}()
	for u := 0; u < n; u++ {
		res[parts[u]] += csr.NodeW[u]
		cnt[parts[u]]++
	}
	conn := ws.Int64s.Get(k) // scratch: connectivity of one node to each part
	defer ws.Int64s.Put(conn)
	for pass := 0; pass < maxPasses; pass++ {
		st.Passes++
		moves := 0
		for u := 0; u < n; u++ {
			un := graph.Node(u)
			from := parts[u]
			if cnt[from] == 1 {
				continue // never empty a part
			}
			boundary := false
			for i := range conn {
				conn[i] = 0
			}
			adj, wts := csr.Row(un)
			for i, v := range adj {
				conn[parts[v]] += wts[i]
				if parts[v] != from {
					boundary = true
				}
			}
			if !boundary {
				continue
			}
			w := csr.NodeW[u]
			bestTo := -1
			var bestGain int64
			for to := 0; to < k; to++ {
				if to == from || conn[to] == 0 {
					continue
				}
				if lim := lims[to]; lim > 0 && res[to]+w > lim {
					continue
				}
				// bestGain starts at 0, so only strictly improving moves
				// are taken; ascending iteration breaks ties toward the
				// lowest part id.
				if gain := conn[to] - conn[from]; gain > bestGain {
					bestGain = gain
					bestTo = to
				}
			}
			if bestTo >= 0 {
				parts[u] = bestTo
				res[from] -= w
				res[bestTo] += w
				cnt[from]--
				cnt[bestTo]++
				cut -= bestGain
				moves++
			}
		}
		st.Moves += moves
		if moves == 0 {
			break
		}
	}
	st.CutAfter = cut
	return st
}
