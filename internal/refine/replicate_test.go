package refine

import (
	"math/rand"
	"testing"

	"ppnpart/internal/gen"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/ppn"
	"ppnpart/internal/pstate"
)

// fanoutHyperGraph lowers a random fanout PPN to the hyperedge model.
func fanoutHyperGraph(t *testing.T, nProcs int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	net, err := gen.RandomFanoutPPN(nProcs, gen.WeightRange{Lo: 10, Hi: 100},
		gen.WeightRange{Lo: 1, Hi: 5}, rng)
	if err != nil {
		t.Fatalf("RandomFanoutPPN: %v", err)
	}
	g, err := net.ToGraphHyper(ppn.DefaultResourceModel())
	if err != nil {
		t.Fatalf("ToGraphHyper: %v", err)
	}
	return g
}

func TestReplicateDeterministicAndBounded(t *testing.T) {
	g := fanoutHyperGraph(t, 30, 5)
	n := g.NumNodes()
	k := 4
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i % k
	}
	cfg := pstate.Config{K: k, Constraints: metrics.Constraints{Rmax: g.TotalNodeWeight()}}
	reps1, st1, err := Replicate(g, parts, k, cfg, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	reps2, st2, err := Replicate(g, parts, k, cfg, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st1 != st2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", st1, st2)
	}
	for u := range reps1 {
		if reps1[u] != reps2[u] {
			t.Fatalf("replica vector differs at node %d: %d vs %d", u, reps1[u], reps2[u])
		}
	}
	if st1.ScoreAfter > st1.ScoreBefore {
		t.Fatalf("score regressed: before %v, after %v", st1.ScoreBefore, st1.ScoreAfter)
	}
	if st1.ObjectiveAfter > st1.ObjectiveBefore {
		t.Fatalf("objective regressed: before %d, after %d", st1.ObjectiveBefore, st1.ObjectiveAfter)
	}
	clones := 0
	for u, p := range reps1 {
		if p < 0 {
			continue
		}
		clones++
		if p == parts[u] {
			t.Fatalf("node %d replicated into its home part %d", u, p)
		}
		if p >= k {
			t.Fatalf("node %d replica part %d out of range", u, p)
		}
	}
	if clones != st1.Clones {
		t.Fatalf("replica vector holds %d clones, stats say %d", clones, st1.Clones)
	}
	// A naive round-robin assignment of a fanout-heavy network leaves
	// plenty of cut producer streams, so the pass must find work.
	if st1.Clones == 0 {
		t.Fatal("replication pass found no improvement on a fanout-heavy PPN")
	}
	if st1.ScoreAfter >= st1.ScoreBefore {
		t.Fatalf("clones committed without strict improvement: %v -> %v",
			st1.ScoreBefore, st1.ScoreAfter)
	}
}

// TestReplicateScoreAfterIsReproducible replays the returned replica
// vector on a fresh state and checks the pass reported the true score.
func TestReplicateScoreAfterIsReproducible(t *testing.T) {
	g := fanoutHyperGraph(t, 24, 11)
	n := g.NumNodes()
	k := 3
	parts := make([]int, n)
	for i := range parts {
		parts[i] = (i * 7) % k
	}
	cfg := pstate.Config{K: k, Constraints: metrics.Constraints{Rmax: g.TotalNodeWeight()}}
	reps, st, err := Replicate(g, parts, k, cfg, ReplicateOptions{MaxClones: 8})
	if err != nil {
		t.Fatal(err)
	}
	if st.Clones > 8 {
		t.Fatalf("MaxClones=8 exceeded: %d", st.Clones)
	}
	s, err := pstate.New(g.ToCSR(), parts, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range reps {
		if p >= 0 {
			s.Replicate(graph.Node(u), p)
		}
	}
	if got := s.Score(); got != st.ScoreAfter {
		t.Fatalf("replayed score %v, stats claim %v", got, st.ScoreAfter)
	}
	if got := s.Objective(); got != st.ObjectiveAfter {
		t.Fatalf("replayed objective %d, stats claim %d", got, st.ObjectiveAfter)
	}
}

// TestReplicateRespectsPerPartCaps pins one partition's cap at its current
// load so no clone can land there.
func TestReplicateRespectsPerPartCaps(t *testing.T) {
	g := fanoutHyperGraph(t, 24, 17)
	n := g.NumNodes()
	k := 3
	parts := make([]int, n)
	for i := range parts {
		parts[i] = i % k
	}
	loads := metrics.PartResources(g, parts, k)
	total := g.TotalNodeWeight()
	c := metrics.Constraints{Rmax: total, RmaxPart: []int64{loads[0], total, total}}
	cfg := pstate.Config{K: k, Constraints: c}
	reps, _, err := Replicate(g, parts, k, cfg, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for u, p := range reps {
		if p == 0 {
			t.Fatalf("node %d cloned into part 0 despite a full cap", u)
		}
	}
	res := metrics.ReplicatedPartResources(g, parts, reps, k)
	if res[0] != loads[0] {
		t.Fatalf("part 0 load changed: %d -> %d", loads[0], res[0])
	}
}

// TestReplicateNoOpWithoutCutTraffic verifies the pass leaves an already
// co-located assignment untouched.
func TestReplicateNoOpWithoutCutTraffic(t *testing.T) {
	g := fanoutHyperGraph(t, 12, 23)
	parts := make([]int, g.NumNodes()) // everything in part 0: nothing is cut
	cfg := pstate.Config{K: 2, Constraints: metrics.Constraints{Rmax: g.TotalNodeWeight()}}
	reps, st, err := Replicate(g, parts, 2, cfg, ReplicateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if st.Clones != 0 || st.ScoreAfter != st.ScoreBefore {
		t.Fatalf("no-op input produced clones: %+v", st)
	}
	for u, p := range reps {
		if p != -1 {
			t.Fatalf("node %d replicated in a cut-free assignment", u)
		}
	}
}
