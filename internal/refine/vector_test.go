package refine

import (
	"testing"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

func TestRebalanceVectorFixesOverflow(t *testing.T) {
	// 6 nodes, 2 kinds. Part 0 initially holds all BRAM-heavy nodes.
	g := graph.New(6)
	for i := 1; i < 6; i++ {
		g.MustAddEdge(graph.Node(i-1), graph.Node(i), 1)
	}
	vecs := [][]int64{
		{10, 4}, {10, 4}, {10, 4}, // BRAM-heavy
		{10, 0}, {10, 0}, {10, 0},
	}
	parts := []int{0, 0, 0, 1, 1, 1}
	vc := metrics.VectorConstraints{Rmax: []int64{40, 8}}
	if metrics.VectorFeasible(vecs, parts, 2, vc) {
		t.Fatal("setup: expected initial overflow (part 0 BRAM 12 > 8)")
	}
	moves, ok := RebalanceVector(g, vecs, parts, 2, vc, 0)
	if !ok {
		t.Fatalf("rebalance failed; totals=%v", metrics.PartResourceVectors(vecs, parts, 2))
	}
	if moves == 0 {
		t.Fatal("expected moves")
	}
	if !metrics.VectorFeasible(vecs, parts, 2, vc) {
		t.Fatal("claimed fit but infeasible")
	}
}

func TestRebalanceVectorImpossible(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	vecs := [][]int64{{100, 1}, {1, 1}}
	parts := []int{0, 1}
	vc := metrics.VectorConstraints{Rmax: []int64{50, 10}}
	_, ok := RebalanceVector(g, vecs, parts, 2, vc, 0)
	if ok {
		t.Fatal("impossible instance reported balanced")
	}
}

func TestRebalanceVectorNoop(t *testing.T) {
	g := graph.New(2)
	g.MustAddEdge(0, 1, 1)
	vecs := [][]int64{{1, 1}, {1, 1}}
	parts := []int{0, 1}
	moves, ok := RebalanceVector(g, vecs, parts, 2, metrics.VectorConstraints{Rmax: []int64{5, 5}}, 0)
	if !ok || moves != 0 {
		t.Fatal("fitting input should be a no-op")
	}
	moves, ok = RebalanceVector(g, vecs, parts, 2, metrics.VectorConstraints{}, 0)
	if !ok || moves != 0 {
		t.Fatal("inactive constraints should be a no-op")
	}
}

func TestRebalanceVectorPrefersCheapMoves(t *testing.T) {
	// Node 2 is heavily tied to part 0; node 3 is loose. Both could fix
	// the overflow; the pass should move the loose one.
	g := graph.New(5)
	g.MustAddEdge(0, 2, 100)
	g.MustAddEdge(1, 2, 100)
	g.MustAddEdge(0, 3, 1)
	g.MustAddEdge(3, 4, 1)
	vecs := [][]int64{{1, 0}, {1, 0}, {1, 2}, {1, 2}, {1, 0}}
	parts := []int{0, 0, 0, 0, 1}
	vc := metrics.VectorConstraints{Rmax: []int64{10, 2}}
	// Part 0 BRAM = 4 > 2: must shed node 2 or 3.
	_, ok := RebalanceVector(g, vecs, parts, 2, vc, 0)
	if !ok {
		t.Fatal("rebalance failed")
	}
	if parts[2] != 0 {
		t.Fatal("moved the expensive node instead of the loose one")
	}
	if parts[3] == 0 {
		t.Fatal("loose node not moved")
	}
}
