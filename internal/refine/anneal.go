package refine

import (
	"math"
	"math/rand"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pstate"
)

// AnnealOptions configures Anneal.
type AnnealOptions struct {
	// Iterations is the number of proposed moves (default 200·n).
	Iterations int
	// InitialTemp sets the starting temperature as a fraction of the
	// total edge weight (default 0.05).
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every n proposals
	// (default 0.95).
	Cooling float64
}

// Anneal refines a k-way partition by simulated annealing on the same
// constrained objective as TabuSearch: random single-node moves, always
// accepted when improving, accepted with probability exp(-Δ/T) when
// worsening, geometric cooling. The best state seen is restored at the
// end. The rng makes runs reproducible.
func Anneal(g *graph.Graph, parts []int, k int, c metrics.Constraints, opts AnnealOptions, rng *rand.Rand) (Stats, bool) {
	return AnnealCSR(g.ToCSR(), parts, k, c, opts, rng)
}

// AnnealCSR is Anneal on a prebuilt CSR snapshot.
func AnnealCSR(csr *graph.CSR, parts []int, k int, c metrics.Constraints, opts AnnealOptions, rng *rand.Rand) (Stats, bool) {
	n := csr.NumNodes()
	if opts.Iterations <= 0 {
		opts.Iterations = 200 * n
	}
	if opts.InitialTemp <= 0 {
		opts.InitialTemp = 0.05
	}
	if opts.Cooling <= 0 || opts.Cooling >= 1 {
		opts.Cooling = 0.95
	}
	st := Stats{CutBefore: csrEdgeCut(csr, parts)}
	if n == 0 || k < 2 {
		st.CutAfter = st.CutBefore
		return st, csrFeasible(csr, parts, k, c)
	}
	s, err := pstate.New(csr, parts, pstate.Config{K: k, Constraints: c})
	if err != nil {
		return st, false
	}
	penalty := penaltyUnit(csr.EdgeWT)
	bwEx, resEx, _ := s.Excess()
	cur := objective(st.CutBefore, bwEx+resEx, penalty)
	best := cur
	bestParts := append([]int(nil), parts...)
	temp := opts.InitialTemp * float64(csr.EdgeWT+1)

	for iter := 0; iter < opts.Iterations; iter++ {
		if iter > 0 && iter%n == 0 {
			temp *= opts.Cooling
		}
		u := graph.Node(rng.Intn(n))
		from := s.Part(u)
		if s.Count(from) == 1 {
			continue
		}
		to := rng.Intn(k - 1)
		if to >= from {
			to++
		}
		cd, ed, red := s.MoveDelta(u, to)
		dObj := cd + (ed+red)*penalty
		accept := dObj <= 0
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-float64(dObj)/temp)
		}
		if !accept {
			continue
		}
		s.Move(u, to)
		cur += dObj
		st.Moves++
		if cur < best {
			best = cur
			copy(bestParts, s.Parts())
		}
	}
	copy(parts, bestParts)
	st.Passes = 1
	st.CutAfter = csrEdgeCut(csr, parts)
	return st, csrFeasible(csr, parts, k, c)
}
