package refine

import (
	"math"
	"math/rand"

	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// AnnealOptions configures Anneal.
type AnnealOptions struct {
	// Iterations is the number of proposed moves (default 200·n).
	Iterations int
	// InitialTemp sets the starting temperature as a fraction of the
	// total edge weight (default 0.05).
	InitialTemp float64
	// Cooling is the geometric cooling factor applied every n proposals
	// (default 0.95).
	Cooling float64
}

// Anneal refines a k-way partition by simulated annealing on the same
// constrained objective as TabuSearch: random single-node moves, always
// accepted when improving, accepted with probability exp(-Δ/T) when
// worsening, geometric cooling. The best state seen is restored at the
// end. The rng makes runs reproducible.
func Anneal(g *graph.Graph, parts []int, k int, c metrics.Constraints, opts AnnealOptions, rng *rand.Rand) (Stats, bool) {
	n := g.NumNodes()
	if opts.Iterations <= 0 {
		opts.Iterations = 200 * n
	}
	if opts.InitialTemp <= 0 {
		opts.InitialTemp = 0.05
	}
	if opts.Cooling <= 0 || opts.Cooling >= 1 {
		opts.Cooling = 0.95
	}
	st := Stats{CutBefore: metrics.EdgeCut(g, parts)}
	if n == 0 || k < 2 {
		st.CutAfter = st.CutBefore
		return st, metrics.Feasible(g, parts, k, c)
	}
	s := newBWState(g, parts, k)
	penalty := penaltyUnit(g)
	bmax := c.Bmax
	if bmax <= 0 {
		bmax = 1 << 62
	}
	cur := objective(st.CutBefore, s.excess(bmax)+resourceExcess(s.res, c.Rmax), penalty)
	best := cur
	bestParts := append([]int(nil), parts...)
	temp := opts.InitialTemp * float64(g.TotalEdgeWeight()+1)

	for iter := 0; iter < opts.Iterations; iter++ {
		if iter > 0 && iter%n == 0 {
			temp *= opts.Cooling
		}
		u := graph.Node(rng.Intn(n))
		from := s.parts[u]
		if s.cnt[from] == 1 {
			continue
		}
		to := rng.Intn(k - 1)
		if to >= from {
			to++
		}
		ed, cd := s.moveDelta(u, to, bmax)
		red := resourceMoveDelta(s.res, from, to, g.NodeWeight(u), c.Rmax)
		dObj := cd + (ed+red)*penalty
		accept := dObj <= 0
		if !accept && temp > 0 {
			accept = rng.Float64() < math.Exp(-float64(dObj)/temp)
		}
		if !accept {
			continue
		}
		s.apply(u, to)
		cur += dObj
		st.Moves++
		if cur < best {
			best = cur
			copy(bestParts, s.parts)
		}
	}
	copy(parts, bestParts)
	st.Passes = 1
	st.CutAfter = metrics.EdgeCut(g, parts)
	return st, metrics.Feasible(g, parts, k, c)
}
