package refine

import (
	"ppnpart/internal/arena"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// RebalanceVector moves nodes out of partitions that overflow any
// resource kind into partitions with room in every kind, preferring moves
// with the least cut increase — the multi-resource analogue of
// RebalanceResources. Returns the number of moves and whether every
// partition now fits every kind.
func RebalanceVector(g *graph.Graph, vectors [][]int64, parts []int, k int,
	vc metrics.VectorConstraints, maxPasses int) (int, bool) {
	if !vc.Active() {
		return 0, true
	}
	ws := arena.Get()
	defer arena.Put(ws)
	return RebalanceVectorWS(ws, g.ToCSR(), vectors, parts, k, vc, maxPasses)
}

// RebalanceVectorWS is RebalanceVector on a prebuilt CSR snapshot with all
// scratch drawn from ws.
func RebalanceVectorWS(ws *arena.Workspace, csr *graph.CSR, vectors [][]int64, parts []int, k int,
	vc metrics.VectorConstraints, maxPasses int) (int, bool) {
	if !vc.Active() {
		return 0, true
	}
	if maxPasses <= 0 {
		maxPasses = 16
	}
	totals := metrics.PartResourceVectors(vectors, parts, k)
	cnt := metrics.PartSizes(parts, k)
	d := 0
	if len(vectors) > 0 {
		d = len(vectors[0])
	}
	overflowing := func(p int) bool {
		for kind := 0; kind < d; kind++ {
			if kind < len(vc.Rmax) && vc.Rmax[kind] > 0 && totals[p][kind] > vc.Rmax[kind] {
				return true
			}
		}
		return false
	}
	fitsAfterAdd := func(p, u int) bool {
		for kind := 0; kind < d; kind++ {
			if kind < len(vc.Rmax) && vc.Rmax[kind] > 0 &&
				totals[p][kind]+vectors[u][kind] > vc.Rmax[kind] {
				return false
			}
		}
		return true
	}
	allFit := func() bool {
		for p := 0; p < k; p++ {
			if overflowing(p) {
				return false
			}
		}
		return true
	}
	// relieves reports whether moving u out of its part reduces an
	// overflowing kind — pointless moves are never considered.
	relieves := func(u int) bool {
		from := parts[u]
		for kind := 0; kind < d; kind++ {
			if kind < len(vc.Rmax) && vc.Rmax[kind] > 0 &&
				totals[from][kind] > vc.Rmax[kind] && vectors[u][kind] > 0 {
				return true
			}
		}
		return false
	}

	moves := 0
	n := csr.NumNodes()
	conn := ws.Int64s.Get(k)
	defer ws.Int64s.Put(conn)
	maxMoves := maxPasses * n
	for moves < maxMoves && !allFit() {
		// Globally cheapest relieving move across all overflowing parts.
		bestU, bestTo := -1, -1
		var bestCost int64
		for u := 0; u < n; u++ {
			from := parts[u]
			if !overflowing(from) || cnt[from] == 1 || !relieves(u) {
				continue
			}
			for i := range conn {
				conn[i] = 0
			}
			adj, wts := csr.Row(graph.Node(u))
			for i, v := range adj {
				conn[parts[v]] += wts[i]
			}
			for to := 0; to < k; to++ {
				if to == from || !fitsAfterAdd(to, u) {
					continue
				}
				cost := conn[from] - conn[to]
				if bestU < 0 || cost < bestCost {
					bestU, bestTo, bestCost = u, to, cost
				}
			}
		}
		if bestU < 0 {
			break
		}
		from := parts[bestU]
		for kind := 0; kind < d; kind++ {
			totals[from][kind] -= vectors[bestU][kind]
			totals[bestTo][kind] += vectors[bestU][kind]
		}
		cnt[from]--
		cnt[bestTo]++
		parts[bestU] = bestTo
		moves++
	}
	return moves, allFit()
}
