// Package refine implements the local-search refinement algorithms of the
// multilevel scheme: the Fiduccia–Mattheyses (FM) pass for bisections, a
// greedy k-way FM variant, the classic Kernighan–Lin pair-swap algorithm
// (for comparison), the bandwidth-repair pass that drives pairwise traffic
// under Bmax, and the resource-rebalancing pass that drives per-part
// totals under Rmax. All refiners mutate an assignment vector in place and
// report what they changed.
package refine

import "ppnpart/internal/graph"

// gainPQ is a max-priority queue of nodes keyed by int64 gain with
// O(log n) update-key, used by the FM passes. Fiduccia–Mattheyses used
// bucket arrays, which require small integer gain ranges; process-network
// edge weights are arbitrary int64 bandwidths, so a binary heap with a
// position index gives the same amortized behaviour without bounding the
// gain domain. Ties break toward the lower node id for determinism.
type gainPQ struct {
	heap []graph.Node // heap of node ids
	pos  []int        // pos[node] = index in heap, -1 if absent
	gain []int64      // gain[node] = current key
}

func newGainPQ(n int) *gainPQ {
	pq := &gainPQ{
		heap: make([]graph.Node, 0, n),
		pos:  make([]int, n),
		gain: make([]int64, n),
	}
	for i := range pq.pos {
		pq.pos[i] = -1
	}
	return pq
}

func (pq *gainPQ) Len() int { return len(pq.heap) }

// Contains reports whether u is in the queue.
func (pq *gainPQ) Contains(u graph.Node) bool { return pq.pos[u] >= 0 }

// Gain returns the current key of u (meaningful only if Contains(u)).
func (pq *gainPQ) Gain(u graph.Node) int64 { return pq.gain[u] }

// less orders the heap: higher gain first, then lower id.
func (pq *gainPQ) less(i, j int) bool {
	gi, gj := pq.gain[pq.heap[i]], pq.gain[pq.heap[j]]
	if gi != gj {
		return gi > gj
	}
	return pq.heap[i] < pq.heap[j]
}

func (pq *gainPQ) swap(i, j int) {
	pq.heap[i], pq.heap[j] = pq.heap[j], pq.heap[i]
	pq.pos[pq.heap[i]] = i
	pq.pos[pq.heap[j]] = j
}

func (pq *gainPQ) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !pq.less(i, p) {
			break
		}
		pq.swap(i, p)
		i = p
	}
}

func (pq *gainPQ) down(i int) {
	n := len(pq.heap)
	for {
		l, r := 2*i+1, 2*i+2
		best := i
		if l < n && pq.less(l, best) {
			best = l
		}
		if r < n && pq.less(r, best) {
			best = r
		}
		if best == i {
			return
		}
		pq.swap(i, best)
		i = best
	}
}

// Push inserts u with the given gain; if u is present its key is updated.
func (pq *gainPQ) Push(u graph.Node, gain int64) {
	if pq.pos[u] >= 0 {
		pq.Update(u, gain)
		return
	}
	pq.gain[u] = gain
	pq.pos[u] = len(pq.heap)
	pq.heap = append(pq.heap, u)
	pq.up(pq.pos[u])
}

// Update changes u's key.
func (pq *gainPQ) Update(u graph.Node, gain int64) {
	i := pq.pos[u]
	if i < 0 {
		pq.Push(u, gain)
		return
	}
	old := pq.gain[u]
	pq.gain[u] = gain
	if gain > old {
		pq.up(i)
	} else if gain < old {
		pq.down(i)
	}
}

// Adjust adds delta to u's key if present.
func (pq *gainPQ) Adjust(u graph.Node, delta int64) {
	if pq.pos[u] >= 0 {
		pq.Update(u, pq.gain[u]+delta)
	}
}

// Pop removes and returns the max-gain node.
func (pq *gainPQ) Pop() (graph.Node, int64) {
	u := pq.heap[0]
	g := pq.gain[u]
	pq.Remove(u)
	return u, g
}

// Peek returns the max-gain node without removal.
func (pq *gainPQ) Peek() (graph.Node, int64) {
	u := pq.heap[0]
	return u, pq.gain[u]
}

// Remove deletes u from the queue if present.
func (pq *gainPQ) Remove(u graph.Node) {
	i := pq.pos[u]
	if i < 0 {
		return
	}
	last := len(pq.heap) - 1
	if i != last {
		pq.swap(i, last)
	}
	pq.heap = pq.heap[:last]
	pq.pos[u] = -1
	if i <= last-1 && i < len(pq.heap) {
		pq.down(i)
		pq.up(i)
	}
}
