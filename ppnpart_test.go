package ppnpart_test

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"ppnpart"
)

// These tests exercise the library exclusively through the public facade,
// as a downstream user would.

func TestFacadeEndToEndKernelToMapping(t *testing.T) {
	net, err := ppnpart.FIR(4, 512)
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToGraph(ppnpart.DefaultResourceModel())
	if err != nil {
		t.Fatal(err)
	}
	res, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{
		K:           3,
		Constraints: ppnpart.Constraints{Rmax: g.TotalNodeWeight()/2 + 100},
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatalf("infeasible: %v", res.Report.Violations)
	}
	// Map and simulate.
	p := ppnpart.Platform{NumFPGAs: 3, Rmax: g.TotalNodeWeight(), LinkBandwidth: 100}
	sim, err := ppnpart.Simulate(net, ppnpart.MappingFromParts(res.Parts, p), ppnpart.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Completed {
		t.Fatal("simulation did not complete")
	}
}

func TestFacadeBaselineAndMetrics(t *testing.T) {
	g := ppnpart.NewGraphWithWeights([]int64{5, 6, 7, 8})
	g.MustAddEdge(0, 1, 2)
	g.MustAddEdge(1, 2, 3)
	g.MustAddEdge(2, 3, 4)
	res, err := ppnpart.PartitionBaseline(g, ppnpart.BaselineOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	cut := ppnpart.EdgeCut(g, res.Parts)
	if cut != res.Report.EdgeCut {
		t.Fatal("facade metrics disagree with result report")
	}
	m := ppnpart.BandwidthMatrix(g, res.Parts, 2)
	if m[0][1] != cut {
		t.Fatal("bandwidth matrix inconsistent with cut for K=2")
	}
	if ppnpart.MaxLocalBandwidth(g, res.Parts, 2) != m[0][1] {
		t.Fatal("max local bandwidth wrong")
	}
}

func TestFacadePolyhedralProgram(t *testing.T) {
	dom, err := ppnpart.Box([]string{"i"}, []int64{0}, []int64{63})
	if err != nil {
		t.Fatal(err)
	}
	shift, err := ppnpart.ShiftMap([]string{"i"}, []int64{1})
	if err != nil {
		t.Fatal(err)
	}
	prog := ppnpart.Program{
		Name: "chain",
		Statements: []ppnpart.Statement{
			{Name: "a", Domain: dom, Ops: 1},
			{Name: "b", Domain: dom, Ops: 1},
		},
		Dependences: []ppnpart.Dependence{{Producer: 0, Consumer: 1, Map: shift}},
	}
	net, err := ppnpart.Derive(prog)
	if err != nil {
		t.Fatal(err)
	}
	if net.Channels[0].Tokens != 63 {
		t.Fatalf("tokens = %d, want 63", net.Channels[0].Tokens)
	}
}

func TestFacadeIOAndViz(t *testing.T) {
	inst, err := ppnpart.PaperInstance(3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ppnpart.WriteMETIS(&buf, inst.G); err != nil {
		t.Fatal(err)
	}
	back, err := ppnpart.ReadMETIS(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumNodes() != 12 {
		t.Fatal("round trip lost nodes")
	}
	var svg bytes.Buffer
	if err := ppnpart.WriteSVG(&svg, inst.G, ppnpart.VizStyle{ShowWeights: true}); err != nil {
		t.Fatal(err)
	}
	if svg.Len() == 0 {
		t.Fatal("empty SVG")
	}
}

func TestFacadeHeterogeneousTopology(t *testing.T) {
	topo := ppnpart.RingTopology(4, 1000, 10, 1)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	net, err := ppnpart.Pipeline(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := ppnpart.SimulateTopology(net, []int{0, 1, 2, 3}, topo, ppnpart.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sim.Completed {
		t.Fatal("ring simulation did not complete")
	}
	u := ppnpart.UniformTopology(2, 100, 5)
	if u.NumFPGAs() != 2 {
		t.Fatal("uniform topology wrong")
	}
}

func TestFacadeFaultAndRepair(t *testing.T) {
	// Partition a kernel onto 4 FPGAs, kill one mid-run, watch the
	// simulation stall, repair onto the survivors and complete.
	net, err := ppnpart.FIR(6, 1024)
	if err != nil {
		t.Fatal(err)
	}
	g, err := net.ToGraph(ppnpart.DefaultResourceModel())
	if err != nil {
		t.Fatal(err)
	}
	topo := ppnpart.UniformTopology(4, g.TotalNodeWeight(), g.TotalEdgeWeight())
	res, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{K: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	plan := &ppnpart.FaultPlan{
		FPGAFailures: []ppnpart.FPGAFailure{{FPGA: 1, Cycle: 20}},
	}
	faulted, err := ppnpart.SimulateTopologyFaults(net, res.Parts, topo, plan, ppnpart.SimOptions{StallWindow: 64})
	if err != nil {
		t.Fatal(err)
	}
	if faulted.Completed {
		t.Fatal("run survived a dead FPGA without repair")
	}
	degraded, err := plan.DegradedTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := ppnpart.RepairPartition(g, res.Parts, degraded, plan.FailedFPGAs(), ppnpart.RepairOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Feasible {
		t.Fatalf("repair infeasible on a generous surviving platform: %+v", rep.Check)
	}
	fixed, err := ppnpart.SimulateTopologyFaults(net, rep.Assignment, topo, plan, ppnpart.SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !fixed.Completed {
		t.Fatal("repaired mapping still stalls under the same fault")
	}
}

func TestFacadeCtxAndTypedErrors(t *testing.T) {
	g := ppnpart.NewGraphWithWeights([]int64{1, 2, 3, 4})
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ppnpart.PartitionGPCtx(ctx, g, ppnpart.GPOptions{K: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || len(res.Parts) != 4 {
		t.Fatalf("best-effort result missing: stopped=%v parts=%v", res.Stopped, res.Parts)
	}
	if _, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{K: 0}); !errors.Is(err, ppnpart.ErrNonPositiveK) || !errors.Is(err, ppnpart.ErrInvalidOptions) {
		t.Fatalf("K=0 error not typed: %v", err)
	}
	if _, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{K: 2, Constraints: ppnpart.Constraints{Bmax: -1}}); !errors.Is(err, ppnpart.ErrNegativeBmax) {
		t.Fatalf("Bmax<0 error not typed: %v", err)
	}
	if _, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{K: 2, Constraints: ppnpart.Constraints{Rmax: -1}}); !errors.Is(err, ppnpart.ErrNegativeRmax) {
		t.Fatalf("Rmax<0 error not typed: %v", err)
	}
}

func TestFacadeVectorConstraints(t *testing.T) {
	g := ppnpart.NewGraphWithWeights([]int64{10, 10, 10, 10})
	g.MustAddEdge(0, 1, 1)
	g.MustAddEdge(1, 2, 1)
	g.MustAddEdge(2, 3, 1)
	vecs := [][]int64{{10, 2}, {10, 0}, {10, 2}, {10, 0}}
	res, err := ppnpart.PartitionGP(g, ppnpart.GPOptions{
		K:                 2,
		Constraints:       ppnpart.Constraints{Rmax: 25},
		VectorResources:   vecs,
		VectorConstraints: ppnpart.VectorConstraints{Rmax: []int64{25, 2}},
		Seed:              1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Feasible {
		t.Fatal("vector-feasible split exists (one BRAM node per side) but was not found")
	}
}
