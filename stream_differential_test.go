// Differential test for the streaming initial-partition stage: on
// mid-size graphs, an engine solve seeded by the streaming partitioner
// (StreamSeedThreshold forced to 1) must agree with the default
// greedy-grow-seeded solve on feasibility and land within a bounded cut
// ratio of it — the uncoarsen/FM pipeline on top of either seed should
// converge to comparable quality. Runs under -race in the race CI job.
package ppnpart_test

import (
	"math/rand"
	"testing"

	"ppnpart/internal/core"
	"ppnpart/internal/gen"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
)

// cutRatioBound is the allowed spread between the two seeds' final cuts.
// Refinement converges both, but it is local search: a different seed can
// legitimately land in a different basin, so the bound is a backstop
// against a catastrophically bad streaming seed, not an equality claim.
const cutRatioBound = 2.5

func TestStreamSeedDifferential(t *testing.T) {
	type instance struct {
		name string
		g    *graph.Graph
		k    int
	}
	rng := rand.New(rand.NewSource(77))
	mk := func(name string, g *graph.Graph, err error, k int) instance {
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return instance{name, g, k}
	}
	nodeW := gen.WeightRange{Lo: 1, Hi: 20}
	edgeW := gen.WeightRange{Lo: 1, Hi: 10}
	instances := []instance{}
	g1, err := gen.RandomConnected(1200, 4800, nodeW, edgeW, rng)
	instances = append(instances, mk("random1200", g1, err, 4))
	g2, err := gen.Mesh2D(30, 40, nodeW, edgeW, rng)
	instances = append(instances, mk("mesh30x40", g2, err, 6))
	g3, err := gen.PreferentialAttachment(1000, 3, nodeW, edgeW, rng)
	instances = append(instances, mk("prefattach1000", g3, err, 5))
	if testing.Short() {
		instances = instances[:1]
	}

	for _, inst := range instances {
		t.Run(inst.name, func(t *testing.T) {
			k := inst.k
			c := metrics.Constraints{
				Rmax: inst.g.TotalNodeWeight()*115/int64(100*k) + inst.g.MaxNodeWeight(),
				Bmax: 2 * inst.g.TotalEdgeWeight() / int64(k),
			}
			solve := func(threshold int) *core.Result {
				res, err := core.Partition(inst.g, core.Options{
					K:                   k,
					Constraints:         c,
					Seed:                9,
					MaxCycles:           6,
					Parallelism:         2,
					StreamSeedThreshold: threshold,
				})
				if err != nil {
					t.Fatal(err)
				}
				if err := metrics.Validate(inst.g, res.Parts, k); err != nil {
					t.Fatalf("invalid partition: %v", err)
				}
				return res
			}
			greedy := solve(-1) // negative disables stream seeding everywhere
			streamed := solve(1)

			if greedy.Feasible != streamed.Feasible {
				t.Fatalf("feasibility verdicts differ: greedy-seeded %v, stream-seeded %v",
					greedy.Feasible, streamed.Feasible)
			}
			gc, sc := greedy.Report.EdgeCut, streamed.Report.EdgeCut
			if gc <= 0 || sc <= 0 {
				t.Fatalf("degenerate cuts: greedy %d, stream %d", gc, sc)
			}
			if ratio := float64(sc) / float64(gc); ratio > cutRatioBound || ratio < 1/cutRatioBound {
				t.Fatalf("cut ratio %0.2f (stream %d vs greedy %d) outside [%0.2f, %0.2f]",
					ratio, sc, gc, 1/cutRatioBound, cutRatioBound)
			}
		})
	}
}
