package ppnpart_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math/rand"
	"testing"

	"ppnpart/internal/engine"
	"ppnpart/internal/gen"
	"ppnpart/internal/metrics"
	"ppnpart/internal/pool"
	"ppnpart/internal/stream"
)

// The shared worker pool executes every parallel fan-out of a solve —
// cycle batches, the pipeline race, batch gain sweeps, matching
// heuristics, restream sweeps — and its width must never change a result
// bit: the width-1 pool is a plain serial in-order loop, so comparing
// golden trace bytes across widths 1, 4, and 16 pins the whole solve
// trajectory (every RNG draw, tie-break, and reduction) as
// scheduling-independent.
func TestDeterminismAcrossPoolWidths(t *testing.T) {
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	base := engine.Config{
		K:           4,
		Constraints: metrics.Constraints{Bmax: 4000, Rmax: 8000},
		Seed:        3,
		MaxCycles:   8,
		Parallelism: 2,
		Prune:       engine.PruneOff,
	}
	for _, mode := range []struct {
		name   string
		refine engine.RefineMode
	}{
		{"serial-pipelines", engine.RefineSerial},
		{"batch", engine.RefineBatch},
	} {
		t.Run(mode.name, func(t *testing.T) {
			run := func(width int) []byte {
				p := pool.New(width)
				defer p.Close()
				cfg := base
				cfg.Refine = mode.refine
				cfg.Pool = p
				tr := &engine.Trace{OmitTiming: true}
				out := engine.New(cfg.WithDefaults()).Solve(context.Background(), g, tr)
				if out == nil || out.Parts == nil {
					t.Fatalf("width %d produced no outcome", width)
				}
				b, err := tr.JSON()
				if err != nil {
					t.Fatal(err)
				}
				return append(b, []byte(mustJSON(t, out.Parts))...)
			}
			golden := run(1)
			for _, width := range []int{4, 16} {
				if got := run(width); !bytes.Equal(golden, got) {
					t.Fatalf("pool width %d diverged from the width-1 golden trace", width)
				}
			}
		})
	}
}

// Same contract for the standalone streaming partitioner: the restream
// sweep chunks by Options.Workers but executes on the pool, so pool
// width is yet another axis that must not change the trajectory.
func TestDeterminismStreamAcrossPoolWidths(t *testing.T) {
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(width int) []byte {
		p := pool.New(width)
		defer p.Close()
		res, err := stream.PartitionCtx(context.Background(), g, stream.Options{
			K:           4,
			Constraints: metrics.Constraints{Bmax: 4000, Rmax: 8000},
			Workers:     16,
			Pool:        p,
		})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(struct {
			Parts []int              `json:"parts"`
			Iters []stream.IterTrace `json:"iters"`
		}{res.Parts, res.Iters})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	golden := run(1)
	for _, width := range []int{4, 16} {
		if got := run(width); !bytes.Equal(golden, got) {
			t.Fatalf("pool width %d diverged from the width-1 stream golden", width)
		}
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}
