// Package ppnpart partitions Polyhedral Process Networks (and other
// weighted process graphs) across multi-FPGA systems under simultaneous
// bandwidth and resource constraints, implementing the Multi-Level K-Ways
// algorithm of Cattaneo, Moradmand, Sciuto and Santambrogio, "K-Ways
// Partitioning of Polyhedral Process Networks: a Multi-Level Approach"
// (IPDPSW 2015).
//
// The central entry point is PartitionGP, which finds a K-way partition
// whose pairwise inter-partition traffic stays below Bmax and whose
// per-partition resource usage stays below Rmax — or reports that no such
// partition was found within its iteration budget. PartitionBaseline
// provides the constraint-oblivious METIS-style partitioner the paper
// compares against.
//
// Process networks can be built directly (PPN, Process, Channel), derived
// from affine programs via the polyhedral front-end (Program, Derive), or
// taken from the kernel library (FIR, Jacobi1D, MatMul, Pipeline,
// SplitMerge). A network lowers to a weighted Graph with ToGraph; the
// graph feeds the partitioners; the resulting mapping can be statically
// checked and dynamically simulated on a Platform.
//
//	net, _ := ppnpart.FIR(8, 4096)
//	g, _ := net.ToGraph(ppnpart.DefaultResourceModel())
//	res, _ := ppnpart.PartitionGP(g, ppnpart.GPOptions{
//		K:           4,
//		Constraints: ppnpart.Constraints{Bmax: 9600, Rmax: 500},
//	})
//	fmt.Println(res.Feasible, res.Report.EdgeCut)
package ppnpart

import (
	"context"

	"ppnpart/internal/core"
	"ppnpart/internal/fpga"
	"ppnpart/internal/gen"
	"ppnpart/internal/graph"
	"ppnpart/internal/metrics"
	"ppnpart/internal/mlkp"
	"ppnpart/internal/polyhedral"
	"ppnpart/internal/ppn"
	"ppnpart/internal/repair"
	"ppnpart/internal/viz"
)

// Graph types.
type (
	// Graph is a weighted undirected process graph: node weights are
	// resources, edge weights are channel bandwidth.
	Graph = graph.Graph
	// Node identifies a graph vertex.
	Node = graph.Node
	// Edge is an undirected weighted edge.
	Edge = graph.Edge
)

// Graph constructors and I/O.
var (
	// NewGraph returns a graph with n unit-weight nodes.
	NewGraph = graph.New
	// NewGraphWithWeights returns a graph with the given node weights.
	NewGraphWithWeights = graph.NewWithWeights
	// ReadMETIS / WriteMETIS exchange the METIS .graph format.
	ReadMETIS  = graph.ReadMETIS
	WriteMETIS = graph.WriteMETIS
	// ReadGraphJSON / WriteGraphJSON exchange the JSON graph format.
	ReadGraphJSON  = graph.ReadJSON
	WriteGraphJSON = graph.WriteJSON
)

// Constraint and metric types.
type (
	// Constraints carries the paper's two bounds: Bmax on every pairwise
	// inter-partition bandwidth and Rmax on every partition's resources.
	Constraints = metrics.Constraints
	// Report evaluates a partition: cut, max local bandwidth, max
	// resources, violations.
	Report = metrics.Report
	// Violation describes one violated constraint instance.
	Violation = metrics.Violation
	// VectorConstraints bounds multiple resource kinds per partition
	// (LUT, BRAM, DSP, ...) — the multi-resource extension beyond the
	// paper's single-resource model.
	VectorConstraints = metrics.VectorConstraints
)

// Metric functions.
var (
	// EdgeCut returns the total weight of edges crossing partitions.
	EdgeCut = metrics.EdgeCut
	// BandwidthMatrix returns the pairwise inter-partition traffic.
	BandwidthMatrix = metrics.BandwidthMatrix
	// MaxLocalBandwidth returns the largest pairwise traffic entry.
	MaxLocalBandwidth = metrics.MaxLocalBandwidth
	// MaxResource returns the largest per-partition resource total.
	MaxResource = metrics.MaxResource
	// Evaluate builds a full Report for a partition.
	Evaluate = metrics.Evaluate
	// Feasible reports whether a partition meets the constraints.
	Feasible = metrics.Feasible
)

// Partitioner types.
type (
	// GPOptions configures the paper's constrained partitioner.
	GPOptions = core.Options
	// GPResult is the constrained partitioner's outcome.
	GPResult = core.Result
	// BaselineOptions configures the METIS-style baseline.
	BaselineOptions = mlkp.Options
	// BaselineResult is the baseline's outcome.
	BaselineResult = mlkp.Result
	// Algorithm selects the partitioner driven by GPOptions.Algo.
	Algorithm = core.Algorithm
)

// Algorithm values for GPOptions.Algo.
const (
	// AlgoGP is the default multilevel search.
	AlgoGP = core.AlgoGP
	// AlgoStream is the single-pass streaming + restreaming fast path
	// for graphs too large to coarsen (see DESIGN.md §5g).
	AlgoStream = core.AlgoStream
)

// ParseAlgorithm maps "gp"/"stream" (or "") to an Algorithm value.
var ParseAlgorithm = core.ParseAlgorithm

// Typed option errors: every invalid GPOptions value is rejected up
// front with an error wrapping ErrInvalidOptions.
var (
	// ErrInvalidOptions is the base of every option-validation error.
	ErrInvalidOptions = core.ErrInvalidOptions
	// ErrNonPositiveK rejects K <= 0.
	ErrNonPositiveK = core.ErrNonPositiveK
	// ErrNegativeBmax / ErrNegativeRmax reject negative constraints.
	ErrNegativeBmax = core.ErrNegativeBmax
	ErrNegativeRmax = core.ErrNegativeRmax
)

// PartitionGP runs the paper's GP algorithm: multilevel K-ways
// partitioning with best-of-three coarsening, greedy restarts seeding,
// bandwidth/resource-aware refinement and cyclic re-coarsening until the
// constraints are met or the budget is exhausted.
func PartitionGP(g *Graph, opts GPOptions) (*GPResult, error) {
	return core.Partition(g, opts)
}

// PartitionGPCtx is PartitionGP under a context: on cancellation or
// deadline expiry it stops at the next cycle or level boundary and
// returns the best partition found so far (Result.Stopped is set and the
// Report carries any remaining violations) instead of an error.
func PartitionGPCtx(ctx context.Context, g *Graph, opts GPOptions) (*GPResult, error) {
	return core.PartitionCtx(ctx, g, opts)
}

// PartitionBaseline runs the METIS-style multilevel k-way partitioner
// (cut and balance only, constraint-oblivious).
func PartitionBaseline(g *Graph, opts BaselineOptions) (*BaselineResult, error) {
	return mlkp.Partition(g, opts)
}

// Process-network types.
type (
	// PPN is a (polyhedral) process network.
	PPN = ppn.PPN
	// Process is one node of a network.
	Process = ppn.Process
	// Channel is a FIFO between processes.
	Channel = ppn.Channel
	// ResourceModel estimates FPGA resources per process.
	ResourceModel = ppn.ResourceModel
	// Program is an affine program for the polyhedral front-end.
	Program = ppn.Program
	// Statement is one statement of a Program.
	Statement = ppn.Statement
	// Dependence is a flow dependence between statements.
	Dependence = ppn.Dependence
)

// Process-network constructors.
var (
	// DefaultResourceModel reflects a small streaming core per process.
	DefaultResourceModel = ppn.DefaultResourceModel
	// Derive converts an affine Program into a PPN with exact token
	// counts.
	Derive = ppn.Derive
	// Kernel library.
	FIR        = ppn.FIR
	Jacobi1D   = ppn.Jacobi1D
	Jacobi2D   = ppn.Jacobi2D
	Sobel      = ppn.Sobel
	FFT        = ppn.FFT
	MatMul     = ppn.MatMul
	Pipeline   = ppn.Pipeline
	SplitMerge = ppn.SplitMerge
)

// Polyhedral building blocks (for writing Programs).
type (
	// Set is a bounded integer set (iteration domain).
	Set = polyhedral.Set
	// AffineMap is an affine map between iteration tuples.
	AffineMap = polyhedral.Map
	// AffineExpr is an affine expression over iteration variables.
	AffineExpr = polyhedral.Expr
)

var (
	// Box builds a rectangular iteration domain.
	Box = polyhedral.Box
	// IdentityMap builds the identity dependence.
	IdentityMap = polyhedral.Identity
	// ShiftMap builds a uniform (stencil) dependence.
	ShiftMap = polyhedral.Shift
)

// Multi-FPGA platform types.
type (
	// Platform is a homogeneous multi-FPGA system (device count, Rmax,
	// link rate).
	Platform = fpga.Platform
	// Topology is a heterogeneous multi-FPGA system with per-device
	// capacities and per-pair link rates.
	Topology = fpga.Topology
	// Mapping assigns processes to FPGAs.
	Mapping = fpga.Mapping
	// SimOptions configures a simulation.
	SimOptions = fpga.SimOptions
	// SimResult reports makespan, throughput, and link saturation.
	SimResult = fpga.SimResult
	// PlacementResult is the outcome of a part→FPGA placement search.
	PlacementResult = fpga.PlacementResult
)

var (
	// MappingFromParts wraps a partitioner assignment as a Mapping.
	MappingFromParts = fpga.FromParts
	// Simulate executes a mapped network on a homogeneous platform.
	Simulate = fpga.Simulate
	// SimulateTopology executes a mapped network on a heterogeneous
	// topology.
	SimulateTopology = fpga.SimulateTopology
	// UniformTopology builds the homogeneous special case.
	UniformTopology = fpga.Uniform
	// RingTopology builds a ring of fast neighbor links over an optional
	// slower backplane.
	RingTopology = fpga.RingTopology
	// BestPlacement exhaustively searches the part→FPGA assignment on a
	// heterogeneous topology (K ≤ 8).
	BestPlacement = fpga.BestPlacement
	// AnnealPlacement is the swap-based heuristic placer for larger K.
	AnnealPlacement = fpga.AnnealPlacement
	// ReadTopologyJSON / WriteTopologyJSON exchange topology files.
	ReadTopologyJSON  = fpga.ReadTopologyJSON
	WriteTopologyJSON = fpga.WriteTopologyJSON
	// ReadPPNJSON / WritePPNJSON exchange full process networks.
	ReadPPNJSON  = ppn.ReadJSON
	WritePPNJSON = ppn.WriteJSON
)

// Fault injection and repair.
type (
	// FaultPlan describes platform faults to inject mid-run: permanent
	// FPGA failures, multiplicative link degradations, and transient link
	// outages.
	FaultPlan = fpga.FaultPlan
	// FPGAFailure kills one FPGA permanently from a given cycle.
	FPGAFailure = fpga.FPGAFailure
	// LinkDegradation scales one link's bandwidth from a given cycle.
	LinkDegradation = fpga.LinkDegradation
	// LinkOutage zeroes one link's bandwidth over a cycle window.
	LinkOutage = fpga.LinkOutage
	// RepairOptions configures an incremental partition repair.
	RepairOptions = repair.Options
	// RepairResult reports the moved processes, cut delta and feasibility
	// verdict of a repair.
	RepairResult = repair.Result
)

var (
	// SimulateTopologyFaults executes a mapped network while injecting
	// the faults of a FaultPlan, reporting stalled channels and dead
	// processes when the run cannot complete.
	SimulateTopologyFaults = fpga.SimulateTopologyFaults
	// RepairPartition evacuates processes from failed FPGAs and re-fits
	// them onto the survivors, falling back to a full re-partition only
	// when the incremental fix-up is infeasible.
	RepairPartition = repair.Repair
)

// Generators.
type (
	// WeightRange is an inclusive range for generated weights.
	WeightRange = gen.WeightRange
	// Instance is one of the paper's experiment setups.
	Instance = gen.Instance
)

var (
	// RandomConnectedGraph generates a connected graph with exact node
	// and edge counts.
	RandomConnectedGraph = gen.RandomConnected
	// RandomPPN generates a random feed-forward process network.
	RandomPPN = gen.RandomPPN
	// PaperInstance regenerates one of the paper's experiments (1-3).
	PaperInstance = gen.PaperInstance
)

// Visualization.
type (
	// VizStyle configures DOT/SVG rendering.
	VizStyle = viz.Style
)

var (
	// WriteDOT renders a graph (optionally partition-colored) as DOT.
	WriteDOT = viz.WriteDOT
	// WriteSVG renders a graph as a standalone SVG.
	WriteSVG = viz.WriteSVG
)
