// Determinism regression tests: for a fixed Options.Seed, core.Partition
// must return bit-identical Parts across runs AND across code changes to
// the refinement internals. The golden assignments below were captured
// before the incremental partition-state engine and parallel refinement
// landed; they pin the exact search trajectory, so any accidental change
// to RNG consumption order, tie-breaking, or floating-point evaluation
// shows up as a hard failure here rather than as a silent quality drift.
package ppnpart_test

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"

	"ppnpart/internal/core"
	"ppnpart/internal/engine"
	"ppnpart/internal/gen"
	"ppnpart/internal/metrics"
	"ppnpart/internal/stream"
)

// paperGolden pins one (instance, options) partitioning outcome.
type paperGolden struct {
	instance int
	seed     int64
	minimize bool
	parts    []int
	goodness float64
}

var paperGoldens = []paperGolden{
	{1, 1, false, []int{3, 3, 1, 0, 2, 0, 2, 0, 3, 1, 2, 1}, 75},
	{1, 7, true, []int{1, 1, 0, 2, 3, 2, 3, 2, 0, 1, 3, 1}, 70},
	{2, 1, false, []int{2, 0, 3, 0, 0, 1, 2, 3, 2, 1, 1, 3}, 91},
	{2, 7, true, []int{2, 1, 3, 1, 1, 0, 2, 3, 2, 0, 0, 3}, 91},
	{3, 1, false, []int{0, 3, 1, 3, 0, 3, 0, 3, 1, 2, 2, 1}, 105},
	{3, 7, true, []int{1, 3, 0, 3, 3, 2, 2, 1, 0, 3, 2, 0}, 104},
}

func TestDeterminismPaperInstances(t *testing.T) {
	for _, g := range paperGoldens {
		name := fmt.Sprintf("inst%d/seed%d", g.instance, g.seed)
		if g.minimize {
			name += "/min"
		}
		t.Run(name, func(t *testing.T) {
			inst, err := gen.PaperInstance(g.instance)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Partition(inst.G, core.Options{
				K:                     inst.K,
				Constraints:           inst.Constraints,
				Seed:                  g.seed,
				MaxCycles:             24,
				MinimizeAfterFeasible: g.minimize,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Parts) != len(g.parts) {
				t.Fatalf("parts length %d, want %d", len(res.Parts), len(g.parts))
			}
			for i := range g.parts {
				if res.Parts[i] != g.parts[i] {
					t.Fatalf("parts = %v, want golden %v", res.Parts, g.parts)
				}
			}
			if res.Goodness != g.goodness {
				t.Fatalf("goodness = %v, want golden %v", res.Goodness, g.goodness)
			}
		})
	}
}

// TestDeterminismLargeInstance hashes the full assignment of a 500-node
// random instance so a trajectory change anywhere in coarsening, initial
// partitioning, or refinement is caught without embedding 500 ints here.
func TestDeterminismLargeInstance(t *testing.T) {
	const (
		wantHash     = "500475e06d0aa8c0449e66943ee294abe05c8003407d1826bfad6317b818d2df"
		wantGoodness = 5624.0
	)
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Partition(g, core.Options{
		K:           4,
		Constraints: metrics.Constraints{Bmax: 4000, Rmax: 8000},
		Seed:        3,
		MaxCycles:   8,
	})
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	for _, p := range res.Parts {
		fmt.Fprintf(h, "%d,", p)
	}
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != wantHash {
		t.Fatalf("assignment hash = %s, want golden %s (goodness %v, want %v)",
			got, wantHash, res.Goodness, wantGoodness)
	}
	if res.Goodness != wantGoodness {
		t.Fatalf("goodness = %v, want golden %v", res.Goodness, wantGoodness)
	}
}

// TestDeterminismGoldenTrace extends the determinism contract to the
// engine's structured trace: with timing omitted, pruning off, and a
// pinned parallelism, two identically-seeded runs must serialize to
// byte-identical JSON — every per-level heuristic choice, refinement
// outcome, and retry decision is part of the reproducible trajectory.
func TestDeterminismGoldenTrace(t *testing.T) {
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		K:           4,
		Constraints: metrics.Constraints{Bmax: 4000, Rmax: 8000},
		Seed:        3,
		MaxCycles:   8,
		Parallelism: 2,
		Prune:       core.PruneOff,
	}
	run := func() []byte {
		// Wall times vary run to run; OmitTiming zeroes them so the JSON
		// carries only the deterministic trajectory.
		tr := &engine.Trace{OmitTiming: true}
		if _, err := core.PartitionTraceCtx(context.Background(), g, opts, tr); err != nil {
			t.Fatal(err)
		}
		b, err := tr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("trace JSON diverged between identically-seeded runs:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}

	// The golden bytes must also be a complete trace: decodable, covering
	// all three matching heuristics across the per-level records, with FM
	// work and a retry decision on every counted cycle.
	td, err := engine.DecodeTrace(first)
	if err != nil {
		t.Fatalf("golden trace does not decode: %v", err)
	}
	heuristics := map[string]bool{}
	fmPasses := 0
	for _, cyc := range td.Cycles {
		if !cyc.Discarded && !cyc.Pruned && !cyc.Cancelled && cyc.Retry == nil {
			t.Fatalf("counted cycle %d has no retry decision", cyc.Cycle)
		}
		for _, lvl := range cyc.Levels {
			if len(lvl.Candidates) == 0 {
				t.Fatalf("cycle %d level %d has no matching candidates", cyc.Cycle, lvl.Level)
			}
			for _, c := range lvl.Candidates {
				heuristics[c.Heuristic] = true
			}
		}
		for _, r := range cyc.Refines {
			fmPasses += r.FMPasses
		}
	}
	for _, h := range []string{"random", "heavy-edge", "k-means"} {
		if !heuristics[h] {
			t.Errorf("heuristic %q missing from the per-level candidates; trace saw %v", h, heuristics)
		}
	}
	if fmPasses == 0 {
		t.Error("trace records no FM passes")
	}
	if td.Outcome == nil || !td.Outcome.Feasible {
		t.Fatalf("trace outcome = %+v, want feasible", td.Outcome)
	}

	// The same contract holds with batch refinement forced on: two
	// identically-seeded batch-refined runs must serialize to
	// byte-identical trace JSON, and the trace must actually record batch
	// work (mode, pipeline sentinel, applied rounds) — determinism that
	// the concurrent gain sweep is explicitly designed to preserve.
	batchOpts := opts
	batchOpts.Refine = core.RefineBatch
	runBatch := func() []byte {
		tr := &engine.Trace{OmitTiming: true}
		if _, err := core.PartitionTraceCtx(context.Background(), g, batchOpts, tr); err != nil {
			t.Fatal(err)
		}
		b, err := tr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	bFirst, bSecond := runBatch(), runBatch()
	if !bytes.Equal(bFirst, bSecond) {
		t.Fatalf("batch-refined trace JSON diverged between identically-seeded runs:\n--- first ---\n%s\n--- second ---\n%s",
			bFirst, bSecond)
	}
	if bytes.Equal(bFirst, first) {
		t.Fatal("batch-refined trace is byte-identical to the serial trace; the mode recorded nothing")
	}
	btd, err := engine.DecodeTrace(bFirst)
	if err != nil {
		t.Fatalf("batch golden trace does not decode: %v", err)
	}
	batchLevels, rounds := 0, 0
	for _, cyc := range btd.Cycles {
		for _, r := range cyc.Refines {
			if r.Mode != "batch" {
				t.Fatalf("forced batch run traced refine mode %q", r.Mode)
			}
			if r.Pipeline != -1 || r.Batch == nil {
				t.Fatalf("batch refine record incomplete: %+v", r)
			}
			batchLevels++
			rounds += r.Batch.Rounds
		}
	}
	if batchLevels == 0 {
		t.Fatal("batch-refined trace records no refinement levels")
	}
	if rounds == 0 {
		t.Fatal("batch-refined trace records no applied batch rounds")
	}
	if btd.Outcome == nil || !btd.Outcome.Feasible {
		t.Fatalf("batch trace outcome = %+v, want feasible", btd.Outcome)
	}
}

// TestDeterminismStreamSeededGoldenTrace extends the golden-trace
// contract to the streaming initial-partition stage: with the seed
// threshold forced down to 1, every cycle seeds its coarsest graph via
// the streaming partitioner, and two identically-seeded runs must still
// serialize to byte-identical trace JSON — including the per-iteration
// cut/imbalance records of every restream pass.
func TestDeterminismStreamSeededGoldenTrace(t *testing.T) {
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{
		K:                   4,
		Constraints:         metrics.Constraints{Bmax: 4000, Rmax: 8000},
		Seed:                3,
		MaxCycles:           8,
		Parallelism:         2,
		Prune:               core.PruneOff,
		StreamSeedThreshold: 1,
	}
	run := func() []byte {
		tr := &engine.Trace{OmitTiming: true}
		if _, err := core.PartitionTraceCtx(context.Background(), g, opts, tr); err != nil {
			t.Fatal(err)
		}
		b, err := tr.JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("stream-seeded trace JSON diverged between identically-seeded runs:\n--- first ---\n%s\n--- second ---\n%s",
			first, second)
	}
	td, err := engine.DecodeTrace(first)
	if err != nil {
		t.Fatalf("stream-seeded golden trace does not decode: %v", err)
	}
	seeded := 0
	for _, cyc := range td.Cycles {
		if cyc.Seeding == nil {
			continue
		}
		if cyc.Seeding.Method != "stream" {
			t.Fatalf("cycle %d seeded via %q, want stream (threshold 1)", cyc.Cycle, cyc.Seeding.Method)
		}
		if cyc.Seeding.Restarts != 0 {
			t.Fatalf("cycle %d stream seed carries greedy restarts: %+v", cyc.Cycle, cyc.Seeding)
		}
		if len(cyc.Seeding.Stream) == 0 {
			t.Fatalf("cycle %d stream seed recorded no pass trajectory", cyc.Cycle)
		}
		for _, it := range cyc.Seeding.Stream {
			if it.Cut < 0 || it.BandwidthExcess < 0 || it.ResourceExcess < 0 {
				t.Fatalf("cycle %d pass %d has negative cut/imbalance: %+v", cyc.Cycle, it.Iter, it)
			}
		}
		seeded++
	}
	if seeded == 0 {
		t.Fatal("no cycle recorded a stream seeding")
	}
	if td.Outcome == nil || !td.Outcome.Feasible {
		t.Fatalf("stream-seeded trace outcome = %+v, want feasible", td.Outcome)
	}
}

// TestDeterminismStandaloneStreamGolden pins the standalone restreaming
// run: the assignment and the per-iteration cut/imbalance trajectory
// must be byte-identical (as serialized JSON) across repeated runs and
// across every worker count from 1 to 16 — the restream sweep is a pure
// function of the previous pass, so parallelism cannot perturb it.
func TestDeterminismStandaloneStreamGolden(t *testing.T) {
	g, err := gen.RandomConnected(500, 1500,
		gen.WeightRange{Lo: 10, Hi: 100}, gen.WeightRange{Lo: 1, Hi: 20},
		rand.New(rand.NewSource(42)))
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) []byte {
		res, err := core.PartitionCtx(context.Background(), g, core.Options{
			K:           4,
			Constraints: metrics.Constraints{Bmax: 4000, Rmax: 8000},
			Seed:        3,
			Algo:        core.AlgoStream,
			Parallelism: workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.StreamIters) == 0 {
			t.Fatal("stream run recorded no pass trajectory")
		}
		b, err := json.Marshal(struct {
			Parts []int              `json:"parts"`
			Iters []stream.IterTrace `json:"iters"`
		}{res.Parts, res.StreamIters})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	golden := run(1)
	if again := run(1); !bytes.Equal(golden, again) {
		t.Fatalf("standalone stream trace diverged between identical runs:\n%s\nvs\n%s", golden, again)
	}
	for workers := 2; workers <= 16; workers++ {
		if got := run(workers); !bytes.Equal(golden, got) {
			t.Fatalf("workers=%d diverged from the 1-worker golden:\n%s\nvs\n%s", workers, golden, got)
		}
	}
}

// TestDeterminismRepeatedRuns checks run-to-run stability directly: the
// same options must yield the same assignment every time, even though
// refinement pipelines and matching heuristics execute concurrently.
func TestDeterminismRepeatedRuns(t *testing.T) {
	inst, err := gen.PaperInstance(2)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.Options{K: inst.K, Constraints: inst.Constraints, Seed: 11, MaxCycles: 12}
	first, err := core.Partition(inst.G, opts)
	if err != nil {
		t.Fatal(err)
	}
	for run := 1; run < 4; run++ {
		res, err := core.Partition(inst.G, opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := range first.Parts {
			if res.Parts[i] != first.Parts[i] {
				t.Fatalf("run %d diverged: %v vs %v", run, res.Parts, first.Parts)
			}
		}
		if res.Goodness != first.Goodness {
			t.Fatalf("run %d goodness %v vs %v", run, res.Goodness, first.Goodness)
		}
	}
}
